//! Assembly of the complete ground truth.
//!
//! [`GroundTruth::generate`] is the single entry point: a pure function
//! of `(EcosystemConfig, seed)` producing the program roster, botnets,
//! campaigns, domain registry and the time-sorted event stream. Each
//! generation stage draws from its own named RNG stream, so the ground
//! truth is bit-stable regardless of what the observation layers do.

use crate::botnet::{generate_botnets, Botnet};
use crate::campaign::{plan_campaigns, Campaign, CampaignStyle, DeliveryVector, TargetingMix};
use crate::config::{EcosystemConfig, TargetMixConfig};
use crate::domains::{DomainKind, DomainUniverse};
use crate::event::{generate_campaign_events, generate_poison_events, SpamEvent};
use crate::ids::{CampaignId, ProgramId};
use crate::program::ProgramRoster;
use taster_domain::DomainId;
use taster_sim::{RngStream, SimTime, TimeWindow};

/// The fully-generated spam ecosystem.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The configuration that produced this world.
    pub config: EcosystemConfig,
    /// The master seed.
    pub seed: u64,
    /// Domain registry (interner, records, redirects).
    pub universe: DomainUniverse,
    /// Programs and affiliates.
    pub roster: ProgramRoster,
    /// Botnets.
    pub botnets: Vec<Botnet>,
    /// All campaigns (the poisoning pseudo-campaign, when enabled, is
    /// the last entry and has `poison == true` and an empty plan).
    pub campaigns: Vec<Campaign>,
    /// All delivered copies, sorted by time (ties in generation order).
    pub events: Vec<SpamEvent>,
    /// Web-spam (non-e-mail) domain sightings: `(first seen, domain)`,
    /// time-sorted. Consumed only by the hybrid feed's non-mail source.
    pub webspam: Vec<(SimTime, DomainId)>,
}

impl GroundTruth {
    /// Generates the world. Deterministic in `(config, seed)`.
    pub fn generate(config: &EcosystemConfig, seed: u64) -> Result<GroundTruth, String> {
        config.validate()?;
        let mut roster_rng = RngStream::new(seed, "ecosystem/roster");
        let roster = ProgramRoster::generate(config, &mut roster_rng);

        let mut botnet_rng = RngStream::new(seed, "ecosystem/botnets");
        let botnets = generate_botnets(config, &roster, &mut botnet_rng);

        let mut universe_rng = RngStream::new(seed, "ecosystem/universe");
        let mut universe = DomainUniverse::new(config, &mut universe_rng);

        let mut campaign_rng = RngStream::new(seed, "ecosystem/campaigns");
        let mut campaigns =
            plan_campaigns(config, &roster, &botnets, &mut universe, &mut campaign_rng);

        let mut event_rng = RngStream::new(seed, "ecosystem/events");
        let mut events = Vec::new();
        for c in &campaigns {
            generate_campaign_events(config, c, &universe, &mut event_rng, &mut events);
        }

        // The poisoning pseudo-campaign.
        if let Some(poison) = &config.poison {
            if let Some(rustock) = botnets.iter().find(|b| b.poisons) {
                let id = CampaignId(campaigns.len() as u32);
                let affiliate = rustock
                    .operator_affiliates
                    .first()
                    .copied()
                    .unwrap_or(crate::ids::AffiliateId(0));
                let program = roster.affiliate(affiliate).program;
                let window = TimeWindow::new(
                    SimTime::from_days(poison.start_day),
                    SimTime::from_days(poison.start_day + poison.days),
                );
                let mix = TargetingMix::from_config(&TargetMixConfig {
                    brute: 0.75,
                    harvested: 0.0,
                    purchased: 0.15,
                    social: 0.10,
                });
                let delivery = DeliveryVector::Botnet(rustock.id);
                campaigns.push(Campaign {
                    id,
                    affiliate,
                    program,
                    style: CampaignStyle::Loud,
                    delivery,
                    mix,
                    trickle_mix: mix,
                    // Rustock's list covered the mx2-style abandoned
                    // space only — the reason only Bot and mx2 show the
                    // registration collapse in Table 2.
                    brute_mask: 0b010,
                    harvest_mask: 0b1,
                    trickle: TimeWindow::new(window.start, window.start),
                    blast: window,
                    volume: poison.volume,
                    domains: Vec::new(),
                    poison: true,
                });
                let mut poison_rng = RngStream::new(seed, "ecosystem/poison");
                generate_poison_events(
                    poison,
                    id,
                    delivery,
                    &mut universe,
                    &mut poison_rng,
                    &mut events,
                );
            }
        }

        // Time-sort; stable sort keeps generation order on ties.
        events.sort_by_key(|e| e.time);

        // The web-spam corpus: live storefronts advertised outside
        // e-mail (forum spam, search-redirection). Mostly untagged
        // verticals; a slice fronts tagged programs.
        let mut web_rng = RngStream::new(seed, "ecosystem/webspam");
        let n_webspam = ((config.webspam_domains as f64) * config.campaign_scale).round() as usize;
        let mut webspam = Vec::with_capacity(n_webspam);
        let tagged_programs: Vec<ProgramId> = roster.tagged_programs().collect();
        let untagged_programs: Vec<ProgramId> = roster
            .programs
            .iter()
            .filter(|p| !p.tagged)
            .map(|p| p.id)
            .collect();
        use rand::RngExt;
        for _ in 0..n_webspam {
            let program = if web_rng.random_bool(config.webspam_tagged_fraction)
                || untagged_programs.is_empty()
            {
                tagged_programs[web_rng.random_range(0..tagged_programs.len())]
            } else {
                untagged_programs[web_rng.random_range(0..untagged_programs.len())]
            };
            let affs = roster.affiliates_of(program);
            let affiliate = affs[web_rng.random_range(0..affs.len())];
            let registered = web_rng.random_bool(config.webspam_registered_prob);
            let live = web_rng.random_bool(config.storefront_live_prob);
            let d = universe.register_storefront_with(
                program,
                affiliate,
                registered,
                live,
                &mut web_rng,
            );
            let t = SimTime(web_rng.random_range(0..config.days * taster_sim::DAY));
            webspam.push((t, d));
        }
        webspam.sort_by_key(|&(t, _)| t);

        Ok(GroundTruth {
            config: config.clone(),
            seed,
            universe,
            roster,
            botnets,
            campaigns,
            events,
            webspam,
        })
    }

    /// Campaign lookup.
    pub fn campaign(&self, id: CampaignId) -> &Campaign {
        &self.campaigns[id.index()]
    }

    /// The whole measurement window.
    pub fn window(&self) -> TimeWindow {
        TimeWindow::first_days(self.config.days)
    }

    /// Total delivered copies.
    pub fn total_volume(&self) -> u64 {
        self.events.len() as u64
    }

    /// The program whose storefront ultimately sits behind `domain`
    /// (following redirects), if any.
    pub fn storefront_program(&self, domain: DomainId) -> Option<ProgramId> {
        let terminus = self.universe.resolve_final(domain);
        match self.universe.record(terminus).kind {
            DomainKind::Storefront { program, .. } => Some(program),
            _ => None,
        }
    }

    /// True when `domain` (after redirects) fronts a *tagged* program.
    pub fn is_tagged_domain(&self, domain: DomainId) -> bool {
        self.storefront_program(domain)
            .map(|p| self.roster.program(p).tagged)
            .unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::TargetClass;

    fn world(scale: f64, seed: u64) -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(scale), seed).unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = world(0.02, 7);
        let b = world(0.02, 7);
        assert_eq!(a.events.len(), b.events.len());
        assert_eq!(a.events, b.events);
        assert_eq!(a.universe.len(), b.universe.len());
    }

    #[test]
    fn different_seeds_differ() {
        let a = world(0.02, 7);
        let b = world(0.02, 8);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn events_are_time_sorted() {
        let g = world(0.02, 1);
        assert!(g.events.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn poison_campaign_is_last_and_marked() {
        let g = world(0.02, 1);
        let poison: Vec<_> = g.campaigns.iter().filter(|c| c.poison).collect();
        assert_eq!(poison.len(), 1);
        assert!(g.campaigns.last().unwrap().poison);
        // Poison events exist and advertise Poison-kind domains.
        let pid = poison[0].id;
        let mut n = 0;
        for e in g.events.iter().filter(|e| e.campaign == pid) {
            assert_eq!(g.universe.record(e.advertised).kind, DomainKind::Poison);
            n += 1;
        }
        assert!(n > 100, "poison events: {n}");
    }

    #[test]
    fn tagged_domains_resolve_through_landings() {
        let g = world(0.05, 3);
        let mut tagged_landings = 0;
        for c in g.campaigns.iter().filter(|c| !c.poison) {
            let tagged = g.roster.program(c.program).tagged;
            for p in &c.domains {
                assert_eq!(
                    g.storefront_program(p.storefront),
                    Some(c.program),
                    "storefront resolves to its own program"
                );
                if let Some(l) = p.landing {
                    if g.is_tagged_domain(l) {
                        tagged_landings += 1;
                    }
                    // Fresh landing domains are exclusive to their
                    // campaign; compromised benign redirectors are
                    // shared (a later campaign may re-point a popular
                    // shortener), so we only check those resolve to
                    // *some* storefront.
                    match g.universe.record(l).kind {
                        DomainKind::Landing => {
                            assert_eq!(g.storefront_program(l), Some(c.program))
                        }
                        _ => assert!(g.storefront_program(l).is_some()),
                    }
                }
                assert_eq!(g.is_tagged_domain(p.storefront), tagged);
            }
        }
        assert!(
            tagged_landings > 0,
            "some landing domains front tagged programs"
        );
    }

    #[test]
    fn brute_force_volume_is_substantial() {
        let g = world(0.02, 2);
        let brute = g
            .events
            .iter()
            .filter(|e| e.target == TargetClass::BruteForce)
            .count();
        let frac = brute as f64 / g.events.len() as f64;
        assert!(frac > 0.2 && frac < 0.8, "brute fraction {frac}");
    }

    #[test]
    fn events_fit_in_window_with_slack() {
        let g = world(0.02, 2);
        let limit = g.window().end.plus(15 * taster_sim::DAY);
        assert!(g.events.iter().all(|e| e.time < limit));
    }
}
