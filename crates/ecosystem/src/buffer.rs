//! Chunked struct-of-arrays event buffer for streaming consumers.
//!
//! The fused generate+collect pass never holds the event log: it fills
//! one [`EventBuffer`] per chunk from the replay stream and processes
//! it in place. Struct-of-arrays layout keeps the per-member match
//! loop columnar — the structural filters touch only the `target`,
//! `delivery` and `campaign` columns, so members that skip an event
//! never pull its other columns through the cache.

use crate::campaign::{DeliveryVector, TargetClass};
use crate::event::SpamEvent;
use crate::ids::CampaignId;
use taster_domain::DomainId;
use taster_sim::SimTime;

/// Column sentinel for "no chaff domain".
pub const NO_CHAFF: u32 = u32::MAX;

/// One chunk of the event stream in struct-of-arrays layout, plus the
/// time-sorted index of each row — the key every per-event RNG and
/// fault stream uses, which is what makes the output independent of
/// chunk size and worker count.
#[derive(Debug, Default, Clone)]
pub struct EventBuffer {
    /// Delivery instants.
    pub time: Vec<SimTime>,
    /// Originating campaign (raw `CampaignId` index).
    pub campaign: Vec<u32>,
    /// Advertised domain (raw `DomainId` index).
    pub advertised: Vec<u32>,
    /// Chaff domain (raw index) or [`NO_CHAFF`].
    pub chaff: Vec<u32>,
    /// Recipient address-list class.
    pub target: Vec<TargetClass>,
    /// Delivery vector.
    pub delivery: Vec<DeliveryVector>,
    /// Time-sorted index of each row in the full log.
    pub sorted_idx: Vec<u32>,
}

impl EventBuffer {
    /// An empty buffer with room for `cap` rows per column.
    pub fn with_capacity(cap: usize) -> EventBuffer {
        EventBuffer {
            time: Vec::with_capacity(cap),
            campaign: Vec::with_capacity(cap),
            advertised: Vec::with_capacity(cap),
            chaff: Vec::with_capacity(cap),
            target: Vec::with_capacity(cap),
            delivery: Vec::with_capacity(cap),
            sorted_idx: Vec::with_capacity(cap),
        }
    }

    /// Appends one event with its time-sorted index.
    pub fn push(&mut self, event: &SpamEvent, sorted_idx: u32) {
        self.time.push(event.time);
        self.campaign.push(event.campaign.0);
        self.advertised.push(event.advertised.0);
        self.chaff.push(event.chaff.map_or(NO_CHAFF, |d| d.0));
        self.target.push(event.target);
        self.delivery.push(event.delivery);
        self.sorted_idx.push(sorted_idx);
    }

    /// Reassembles row `r` as a [`SpamEvent`].
    pub fn event(&self, r: usize) -> SpamEvent {
        SpamEvent {
            time: self.time[r],
            campaign: CampaignId(self.campaign[r]),
            advertised: DomainId(self.advertised[r]),
            chaff: self.chaff(r),
            target: self.target[r],
            delivery: self.delivery[r],
        }
    }

    /// Resizes to exactly `len` zero-filled rows for scatter writes
    /// via [`Self::set`]. Callers must overwrite every row before
    /// reading it back (sorted-position scatters from a permutation
    /// do, by construction).
    pub fn reset_for_scatter(&mut self, len: usize) {
        self.clear();
        self.time.resize(len, SimTime::ZERO);
        self.campaign.resize(len, 0);
        self.advertised.resize(len, 0);
        self.chaff.resize(len, NO_CHAFF);
        self.target.resize(len, TargetClass::BruteForce);
        self.delivery.resize(len, DeliveryVector::Direct);
        self.sorted_idx.resize(len, 0);
    }

    /// Overwrites row `r` with `event` (scatter counterpart of
    /// [`Self::push`]).
    pub fn set(&mut self, r: usize, event: &SpamEvent, sorted_idx: u32) {
        self.time[r] = event.time;
        self.campaign[r] = event.campaign.0;
        self.advertised[r] = event.advertised.0;
        self.chaff[r] = event.chaff.map_or(NO_CHAFF, |d| d.0);
        self.target[r] = event.target;
        self.delivery[r] = event.delivery;
        self.sorted_idx[r] = sorted_idx;
    }

    /// Chaff domain of row `r`, if any.
    pub fn chaff(&self, r: usize) -> Option<DomainId> {
        let c = self.chaff[r];
        (c != NO_CHAFF).then_some(DomainId(c))
    }

    /// Rows currently held.
    pub fn len(&self) -> usize {
        self.time.len()
    }

    /// Whether the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.time.is_empty()
    }

    /// Clears all columns, keeping capacity.
    pub fn clear(&mut self) {
        self.time.clear();
        self.campaign.clear();
        self.advertised.clear();
        self.chaff.clear();
        self.target.clear();
        self.delivery.clear();
        self.sorted_idx.clear();
    }

    /// Consumes a generation-order buffer and returns the time-sorted
    /// equivalent: output row `rank[g]` is input row `g`, and
    /// `sorted_idx[r] == r` for every row. Columns are scattered one
    /// at a time, each source column dropped as soon as its sorted
    /// copy exists, so peak memory is one extra column (the 8-byte
    /// time column), not a second full buffer.
    pub fn into_sorted(self, rank: &[u32]) -> EventBuffer {
        let n = self.len();
        debug_assert_eq!(rank.len(), n, "rank must cover every row");
        fn scatter<T: Copy>(src: Vec<T>, rank: &[u32], fill: T) -> Vec<T> {
            let mut out = vec![fill; src.len()];
            for (g, v) in src.into_iter().enumerate() {
                out[rank[g] as usize] = v;
            }
            out
        }
        let time = scatter(self.time, rank, SimTime::ZERO);
        let campaign = scatter(self.campaign, rank, 0);
        let advertised = scatter(self.advertised, rank, 0);
        let chaff = scatter(self.chaff, rank, NO_CHAFF);
        let target = scatter(self.target, rank, TargetClass::BruteForce);
        let delivery = scatter(self.delivery, rank, DeliveryVector::Direct);
        EventBuffer {
            time,
            campaign,
            advertised,
            chaff,
            target,
            delivery,
            sorted_idx: (0..n as u32).collect(),
        }
    }

    /// Bytes per buffered row across all columns (for peak-memory
    /// estimates in benchmarks).
    pub fn bytes_per_event() -> usize {
        std::mem::size_of::<SimTime>()
            + 4 * std::mem::size_of::<u32>()
            + std::mem::size_of::<TargetClass>()
            + std::mem::size_of::<DeliveryVector>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::BotnetId;

    fn sample(t: u64, chaff: Option<u32>) -> SpamEvent {
        SpamEvent {
            time: SimTime(t),
            campaign: CampaignId(3),
            advertised: DomainId(17),
            chaff: chaff.map(DomainId),
            target: TargetClass::BruteForce,
            delivery: DeliveryVector::Botnet(BotnetId(1)),
        }
    }

    #[test]
    fn push_and_reassemble_round_trip() {
        let mut buf = EventBuffer::with_capacity(4);
        let a = sample(5, Some(9));
        let b = sample(7, None);
        buf.push(&a, 1);
        buf.push(&b, 0);
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.event(0), a);
        assert_eq!(buf.event(1), b);
        assert_eq!(buf.sorted_idx, vec![1, 0]);
        assert_eq!(buf.chaff(0), Some(DomainId(9)));
        assert_eq!(buf.chaff(1), None);
        buf.clear();
        assert!(buf.is_empty());
    }

    #[test]
    fn bytes_per_event_is_positive_and_small() {
        let b = EventBuffer::bytes_per_event();
        assert!(b > 0 && b <= 64, "bytes per event {b}");
    }
}
