//! The domain registry: ground truth about every domain the simulation
//! can emit.
//!
//! Four populations exist (paper §3.3, §4.1):
//!
//! * **storefronts** — registered by affiliates, hosting program
//!   storefront pages (tagged by the crawler when the program is one
//!   of the 45 classified ones);
//! * **landing domains** — throwaway redirectors, either freshly
//!   registered or *compromised benign sites / free-hosting services*
//!   (these keep their Alexa/ODP listings — the false-positive trap
//!   the paper highlights in Fig 3);
//! * **benign popular domains** — the Alexa/ODP universe, appearing in
//!   spam as chaff and in legitimate mail;
//! * **poison domains** — randomly-generated garbage from the Rustock
//!   incident, almost never registered.

use crate::config::EcosystemConfig;
use crate::ids::{AffiliateId, ProgramId};
use rand::{Rng, RngExt};
use taster_domain::gen::{pick_tld, BrandableGen, DgaGen, BENIGN_TLD_POOL, SPAM_TLD_POOL};
use taster_domain::{DomainId, DomainTable};
use taster_stats::sample::Zipf;

/// What a domain fundamentally is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainKind {
    /// An affiliate's storefront domain.
    Storefront {
        /// Program whose storefront it hosts.
        program: ProgramId,
        /// The affiliate credited for sales through this domain.
        affiliate: AffiliateId,
    },
    /// A freshly-registered landing (redirect) domain.
    Landing,
    /// A benign popular domain (possibly abused as a redirector).
    Benign,
    /// Random-character poisoning garbage.
    Poison,
}

/// Ground truth about one domain.
#[derive(Debug, Clone, Copy)]
pub struct DomainRecord {
    /// What the domain is.
    pub kind: DomainKind,
    /// Whether it appears in DNS zone files (Table 2 "DNS").
    pub registered: bool,
    /// Whether HTTP requests to it succeed (Table 2 "HTTP").
    pub live: bool,
    /// Alexa-style popularity rank (1-based), if listed.
    pub alexa_rank: Option<u32>,
    /// Whether it appears in the Open Directory listings.
    pub odp: bool,
}

impl DomainRecord {
    /// Whether the domain appears on either benign list (the negative
    /// purity indicators of Table 2).
    pub fn benign_listed(&self) -> bool {
        self.alexa_rank.is_some() || self.odp
    }
}

/// The registry of all domains plus the redirect graph.
#[derive(Debug, Clone)]
pub struct DomainUniverse {
    /// Interner for registered-domain text; ids index `records`.
    pub table: DomainTable,
    records: Vec<DomainRecord>,
    /// Dense redirect column parallel to `records`: `redirects[d]` is
    /// the target id, or [`NO_REDIRECT`]. Redirect chasing happens per
    /// event in the provider and per domain in the crawler, so this is
    /// an indexed load where a hash probe used to be.
    redirects: Vec<u32>,
    benign_by_rank: Vec<DomainId>,
    benign_zipf: Zipf,
    storefront_gen: BrandableGen,
    landing_gen: BrandableGen,
    dga: DgaGen,
    /// Reused name-candidate buffer: registrations stream thousands of
    /// generated names through [`intern_fresh`] and only the accepted
    /// ones deserve a heap string of their own.
    scratch: String,
}

impl DomainUniverse {
    /// Creates the universe with its benign population pre-generated.
    pub fn new<R: Rng>(config: &EcosystemConfig, rng: &mut R) -> DomainUniverse {
        let mut table = DomainTable::new();
        let mut records = Vec::new();
        let benign_gen = BrandableGen {
            prefix_prob: 0.08,
            suffix_prob: 0.10,
            digit_prob: 0.05,
            ..BrandableGen::default()
        };
        let mut benign_by_rank = Vec::with_capacity(config.benign_domains);
        let mut scratch = String::new();
        for rank0 in 0..config.benign_domains {
            let id = intern_fresh(&mut table, &mut scratch, |out| {
                benign_gen.domain_into(rng, BENIGN_TLD_POOL, out)
            });
            debug_assert_eq!(id.index(), records.len());
            records.push(DomainRecord {
                kind: DomainKind::Benign,
                registered: true,
                live: true,
                alexa_rank: (rank0 < config.alexa_list_size).then_some(rank0 as u32 + 1),
                odp: rng.random_bool(config.odp_fraction),
            });
            benign_by_rank.push(id);
        }
        let redirects = vec![NO_REDIRECT; records.len()];
        DomainUniverse {
            table,
            records,
            redirects,
            benign_by_rank,
            benign_zipf: Zipf::new(config.benign_domains.max(1), config.benign_zipf_s),
            storefront_gen: BrandableGen::default(),
            landing_gen: BrandableGen {
                suffix_prob: 0.55,
                digit_prob: 0.35,
                ..BrandableGen::default()
            },
            dga: DgaGen::default(),
            scratch,
        }
    }

    /// Registers a fresh storefront domain for `(program, affiliate)`.
    pub fn register_storefront<R: Rng>(
        &mut self,
        config: &EcosystemConfig,
        program: ProgramId,
        affiliate: AffiliateId,
        rng: &mut R,
    ) -> DomainId {
        let gen = self.storefront_gen.clone();
        let id = intern_fresh(&mut self.table, &mut self.scratch, |out| {
            gen.domain_into(rng, SPAM_TLD_POOL, out)
        });
        let registered = rng.random_bool(config.storefront_registered_prob);
        let live = registered && rng.random_bool(config.storefront_live_prob);
        self.push_record(
            id,
            DomainRecord {
                kind: DomainKind::Storefront { program, affiliate },
                registered,
                live,
                alexa_rank: None,
                odp: false,
            },
        );
        id
    }

    /// Registers a storefront with explicit registration/liveness
    /// flags — used by the web-spam corpus, whose domains are junkier
    /// than e-mail-advertised ones.
    pub fn register_storefront_with<R: Rng>(
        &mut self,
        program: ProgramId,
        affiliate: AffiliateId,
        registered: bool,
        live: bool,
        rng: &mut R,
    ) -> DomainId {
        let gen = self.storefront_gen.clone();
        let id = intern_fresh(&mut self.table, &mut self.scratch, |out| {
            gen.domain_into(rng, SPAM_TLD_POOL, out)
        });
        self.push_record(
            id,
            DomainRecord {
                kind: DomainKind::Storefront { program, affiliate },
                registered,
                live: registered && live,
                alexa_rank: None,
                odp: false,
            },
        );
        id
    }

    /// Registers a fresh landing domain redirecting to `target`.
    pub fn register_landing<R: Rng>(
        &mut self,
        config: &EcosystemConfig,
        target: DomainId,
        rng: &mut R,
    ) -> DomainId {
        let gen = self.landing_gen.clone();
        let id = intern_fresh(&mut self.table, &mut self.scratch, |out| {
            gen.domain_into(rng, SPAM_TLD_POOL, out)
        });
        let live = rng.random_bool(config.landing_live_prob);
        self.push_record(
            id,
            DomainRecord {
                kind: DomainKind::Landing,
                registered: true,
                live,
                alexa_rank: None,
                odp: false,
            },
        );
        self.redirects[id.index()] = target.0;
        id
    }

    /// Marks an existing *benign* domain as abused: spam advertises it
    /// and (while compromised) it redirects to `target`. Returns the
    /// chosen domain. The benign record keeps its Alexa/ODP listings.
    pub fn compromise_benign<R: Rng>(&mut self, target: DomainId, rng: &mut R) -> DomainId {
        // Abuse skews towards popular services (URL shorteners, free
        // hosting), i.e. low ranks — reuse the popularity law.
        let rank = self.benign_zipf.sample(rng);
        let id = self.benign_by_rank[rank];
        self.redirects[id.index()] = target.0;
        id
    }

    /// Registers one poison (DGA) domain.
    pub fn register_poison<R: Rng>(&mut self, registered_prob: f64, rng: &mut R) -> DomainId {
        let gen = self.dga.clone();
        let id = intern_fresh(&mut self.table, &mut self.scratch, |out| {
            gen.domain_into(rng, out)
        });
        let registered = rng.random_bool(registered_prob);
        // A registered "poison" name occasionally collides with a real
        // site; half of those respond to HTTP.
        let live = registered && rng.random_bool(0.5);
        self.push_record(
            id,
            DomainRecord {
                kind: DomainKind::Poison,
                registered,
                live,
                alexa_rank: None,
                odp: false,
            },
        );
        id
    }

    /// Replays one [`register_poison`](Self::register_poison) call
    /// against the *final* universe without mutating it, consuming the
    /// identical RNG draws. `expected` is the dense id the original
    /// call handed out.
    ///
    /// The acceptance rule exploits dense monotonic ids: at original
    /// registration time the table held exactly the ids `< expected`,
    /// so a candidate name was fresh back then iff it is absent from
    /// the final table *or* was interned at id `>= expected` (i.e.
    /// later — including by this very call, which owns `expected`
    /// itself). Candidates the original loop rejected are all interned
    /// with ids `< expected`, so the replay rejects exactly the same
    /// names and draws the same number of candidates.
    pub fn replay_poison<R: Rng>(
        &self,
        registered_prob: f64,
        expected: u32,
        rng: &mut R,
    ) -> DomainId {
        let gen = self.dga.clone();
        let mut name = String::new();
        for _ in 0..1000 {
            name.clear();
            gen.domain_into(rng, &mut name);
            if self.table.get(&name).is_none_or(|id| id.0 >= expected) {
                // Same draw order as the original: registered, then
                // liveness only when registered (short-circuit).
                let registered = rng.random_bool(registered_prob);
                if registered {
                    let _live = rng.random_bool(0.5);
                }
                return DomainId(expected);
            }
        }
        // lint:allow(no-panic) -- mirrors intern_fresh: 1000 straight collisions is a configuration error, and a replay that diverged from the first pass must abort loudly
        panic!("domain namespace exhausted: 1000 consecutive collisions");
    }

    /// Samples one chaff domain by popularity (for message bodies).
    pub fn sample_chaff<R: Rng>(&self, rng: &mut R) -> DomainId {
        self.benign_by_rank[self.benign_zipf.sample(rng)]
    }

    /// Samples a benign domain uniformly (for legitimate mail bodies).
    pub fn sample_benign_uniform<R: Rng>(&self, rng: &mut R) -> DomainId {
        self.benign_by_rank[rng.random_range(0..self.benign_by_rank.len())]
    }

    /// Ground truth for `id`.
    pub fn record(&self, id: DomainId) -> &DomainRecord {
        &self.records[id.index()]
    }

    /// Where `id` redirects, if it is (currently) a redirector.
    pub fn redirect_target(&self, id: DomainId) -> Option<DomainId> {
        match self.redirects.get(id.index()) {
            Some(&t) if t != NO_REDIRECT => Some(DomainId(t)),
            _ => None,
        }
    }

    /// Follows the redirect chain from `id` to its terminus (bounded,
    /// defensive against cycles).
    pub fn resolve_final(&self, id: DomainId) -> DomainId {
        let mut cur = id;
        for _ in 0..8 {
            match self.redirect_target(cur) {
                Some(next) if next != cur => cur = next,
                _ => break,
            }
        }
        cur
    }

    /// Number of domains of every population.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates all `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &DomainRecord)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (DomainId(i as u32), r))
    }

    /// Picks a random TLD-pool domain name that is *not* in the table —
    /// used by mailsim for never-spammed legitimate sender domains.
    pub fn fresh_benign_name<R: Rng>(&mut self, rng: &mut R) -> DomainId {
        let gen = BrandableGen {
            prefix_prob: 0.0,
            suffix_prob: 0.0,
            digit_prob: 0.1,
            ..BrandableGen::default()
        };
        let id = intern_fresh(&mut self.table, &mut self.scratch, |out| {
            gen.domain_into(rng, BENIGN_TLD_POOL, out)
        });
        self.push_record(
            id,
            DomainRecord {
                kind: DomainKind::Benign,
                registered: true,
                live: true,
                alexa_rank: None,
                odp: rng.random_bool(0.15),
            },
        );
        id
    }

    fn push_record(&mut self, id: DomainId, record: DomainRecord) {
        debug_assert_eq!(id.index(), self.records.len(), "ids must stay dense");
        self.records.push(record);
        self.redirects.push(NO_REDIRECT);
    }
}

/// Sentinel in the dense redirect column: "does not redirect".
const NO_REDIRECT: u32 = u32::MAX;

/// Interns a freshly-generated name, regenerating on collision, and
/// panics after a pathological number of retries (would indicate an
/// exhausted namespace, i.e. a config error). Candidates are written
/// into `scratch` so rejected names never touch the heap.
fn intern_fresh<F: FnMut(&mut String)>(
    table: &mut DomainTable,
    scratch: &mut String,
    mut gen: F,
) -> DomainId {
    for _ in 0..1000 {
        scratch.clear();
        gen(scratch);
        if table.get(scratch).is_none() {
            return table.intern_str(scratch);
        }
    }
    // lint:allow(no-panic) -- 1000 straight collisions means the configured namespace cannot hold the universe; abort loudly instead of looping forever
    panic!("domain namespace exhausted: 1000 consecutive collisions");
}

/// Picks a TLD for tests and helpers (re-exported convenience).
pub fn spam_tld<R: Rng>(rng: &mut R) -> &'static str {
    pick_tld(rng, SPAM_TLD_POOL)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::RX_PROGRAM;
    use taster_sim::RngStream;

    fn universe() -> (EcosystemConfig, DomainUniverse, RngStream) {
        let cfg = EcosystemConfig {
            benign_domains: 500,
            alexa_list_size: 200,
            ..Default::default()
        };
        let mut rng = RngStream::new(5, "universe-test");
        let u = DomainUniverse::new(&cfg, &mut rng);
        (cfg, u, rng)
    }

    #[test]
    fn benign_universe_is_ranked_and_listed() {
        let (cfg, u, _) = universe();
        assert_eq!(u.len(), cfg.benign_domains);
        let mut odp = 0;
        let mut alexa = 0;
        for (_, r) in u.iter() {
            assert_eq!(r.kind, DomainKind::Benign);
            assert!(r.registered && r.live);
            if r.odp {
                odp += 1;
            }
            if r.alexa_rank.is_some() {
                alexa += 1;
            }
        }
        assert_eq!(alexa, cfg.alexa_list_size);
        let frac = odp as f64 / cfg.benign_domains as f64;
        assert!((frac - cfg.odp_fraction).abs() < 0.1, "odp fraction {frac}");
    }

    #[test]
    fn storefront_registration() {
        let (cfg, mut u, mut rng) = universe();
        let id = u.register_storefront(&cfg, RX_PROGRAM, crate::ids::AffiliateId(7), &mut rng);
        let r = u.record(id);
        assert!(matches!(
            r.kind,
            DomainKind::Storefront { program, affiliate }
                if program == RX_PROGRAM && affiliate.0 == 7
        ));
        assert!(!r.benign_listed());
    }

    #[test]
    fn landing_redirects_resolve() {
        let (cfg, mut u, mut rng) = universe();
        let store = u.register_storefront(&cfg, RX_PROGRAM, crate::ids::AffiliateId(1), &mut rng);
        let landing = u.register_landing(&cfg, store, &mut rng);
        assert_eq!(u.redirect_target(landing), Some(store));
        assert_eq!(u.resolve_final(landing), store);
        assert_eq!(u.resolve_final(store), store);
    }

    #[test]
    fn compromised_benign_keeps_listings() {
        let (cfg, mut u, mut rng) = universe();
        let store = u.register_storefront(&cfg, RX_PROGRAM, crate::ids::AffiliateId(1), &mut rng);
        let abused = u.compromise_benign(store, &mut rng);
        let r = u.record(abused);
        assert_eq!(r.kind, DomainKind::Benign);
        assert_eq!(u.resolve_final(abused), store);
    }

    #[test]
    fn poison_is_mostly_unregistered() {
        let (_, mut u, mut rng) = universe();
        let mut registered = 0;
        for _ in 0..2000 {
            let id = u.register_poison(0.004, &mut rng);
            if u.record(id).registered {
                registered += 1;
            }
        }
        assert!(registered < 30, "registered poison: {registered}");
    }

    #[test]
    fn chaff_sampling_prefers_popular() {
        let (_, u, mut rng) = universe();
        let top = u.benign_by_rank[0];
        let hits = (0..5000)
            .filter(|_| u.sample_chaff(&mut rng) == top)
            .count();
        // Zipf(s≈1) over 500 ranks gives rank 1 ≈ 1/H_500 ≈ 15 %.
        assert!(hits > 200, "top-rank hits: {hits}");
    }

    #[test]
    fn ids_stay_dense_across_registrations() {
        let (cfg, mut u, mut rng) = universe();
        let before = u.len();
        let a = u.register_storefront(&cfg, RX_PROGRAM, crate::ids::AffiliateId(0), &mut rng);
        let b = u.register_landing(&cfg, a, &mut rng);
        let c = u.register_poison(0.0, &mut rng);
        assert_eq!(a.index(), before);
        assert_eq!(b.index(), before + 1);
        assert_eq!(c.index(), before + 2);
        assert_eq!(u.table.len(), u.len());
    }
}
