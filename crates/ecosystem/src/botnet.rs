//! Botnets.
//!
//! Botnet spam is loud: large volumes blasted at brute-force address
//! lists, typically for the small set of programs where the botnet
//! operator is himself an affiliate (paper §4.2.3: "botnet operators
//! frequently act as affiliates themselves and thus only advertise for
//! a modest number of programs"). We model a handful of botnets, each
//! tied to a few operator affiliates drawn from a shared program pool,
//! with a subset monitored by the `Bot` feed collector.

use crate::config::EcosystemConfig;
use crate::ids::{AffiliateId, BotnetId, ProgramId};
use crate::program::ProgramRoster;
use rand::{Rng, RngExt};

/// A simulated spamming botnet.
#[derive(Debug, Clone)]
pub struct Botnet {
    /// Botnet id; `botnets[i].id == i`.
    pub id: BotnetId,
    /// Synthesised name (the paper's era: Rustock, Cutwail, Grum…).
    pub name: String,
    /// Affiliates whose campaigns this botnet delivers (the operator's
    /// own affiliate accounts plus a few renters).
    pub operator_affiliates: Vec<AffiliateId>,
    /// Whether the `Bot` feed runs captive instances of this botnet's
    /// malware (monitored botnets contribute to the feed; unmonitored
    /// ones are the feed's blind spot).
    pub monitored: bool,
    /// Whether this botnet runs the random-domain poisoning campaign
    /// during the poison window (Rustock's behaviour).
    pub poisons: bool,
}

/// Generates the botnet roster.
///
/// The operator affiliates of all botnets together span (at most)
/// `config.botnet_program_pool` distinct programs, reproducing the
/// paper's observation that the `Bot` feed saw only ~15 programs.
pub fn generate_botnets<R: Rng>(
    config: &EcosystemConfig,
    roster: &ProgramRoster,
    rng: &mut R,
) -> Vec<Botnet> {
    // Pick the shared program pool from the *tagged* programs first
    // (botnet spam in the study period was dominated by pharma), then
    // untagged if the pool is larger than the tagged roster.
    let tagged: Vec<ProgramId> = roster.tagged_programs().collect();
    let mut pool: Vec<ProgramId> = Vec::new();
    let mut candidates = tagged;
    for p in roster.programs.iter().filter(|p| !p.tagged) {
        candidates.push(p.id);
    }
    let take = config.botnet_program_pool.min(candidates.len());
    // Deterministic reservoir-free selection: shuffle and take.
    for i in 0..take {
        let j = rng.random_range(i..candidates.len());
        candidates.swap(i, j);
        pool.push(candidates[i]);
    }

    let names = [
        "ruststorm",
        "cutgrain",
        "grumble",
        "maelstrom",
        "lethic-like",
        "bagbot",
        "kelvin",
        "srizzy",
    ];
    let mut botnets = Vec::with_capacity(config.botnets);
    for i in 0..config.botnets {
        let id = BotnetId(i as u8);
        // 2–4 operator affiliates per botnet, drawn from pool programs.
        let n_ops = rng.random_range(2..=4usize);
        let mut ops = Vec::with_capacity(n_ops);
        for _ in 0..n_ops {
            let program = pool[rng.random_range(0..pool.len())];
            let affs = roster.affiliates_of(program);
            if !affs.is_empty() {
                ops.push(affs[rng.random_range(0..affs.len())]);
            }
        }
        ops.sort_unstable();
        ops.dedup();
        botnets.push(Botnet {
            id,
            name: names[i % names.len()].to_string(),
            operator_affiliates: ops,
            monitored: i < config.monitored_botnets,
            // Botnet 0 plays the Rustock role.
            poisons: i == 0 && config.poison.is_some(),
        });
    }
    botnets
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use taster_sim::RngStream;

    fn setup() -> (EcosystemConfig, ProgramRoster, Vec<Botnet>) {
        let cfg = EcosystemConfig::default();
        let mut rng = RngStream::new(3, "botnet-test");
        let roster = ProgramRoster::generate(&cfg, &mut rng);
        let botnets = generate_botnets(&cfg, &roster, &mut rng);
        (cfg, roster, botnets)
    }

    #[test]
    fn roster_shape() {
        let (cfg, _, botnets) = setup();
        assert_eq!(botnets.len(), cfg.botnets);
        assert_eq!(
            botnets.iter().filter(|b| b.monitored).count(),
            cfg.monitored_botnets
        );
        assert_eq!(botnets.iter().filter(|b| b.poisons).count(), 1);
        assert!(botnets[0].poisons, "botnet 0 is the Rustock stand-in");
    }

    #[test]
    fn program_pool_is_bounded() {
        let (cfg, roster, botnets) = setup();
        let programs: HashSet<_> = botnets
            .iter()
            .flat_map(|b| &b.operator_affiliates)
            .map(|&a| roster.affiliate(a).program)
            .collect();
        assert!(programs.len() <= cfg.botnet_program_pool);
        assert!(!programs.is_empty());
    }

    #[test]
    fn operators_exist() {
        let (_, roster, botnets) = setup();
        for b in &botnets {
            assert!(
                !b.operator_affiliates.is_empty(),
                "{} has operators",
                b.name
            );
            for &a in &b.operator_affiliates {
                assert!(a.index() < roster.affiliates.len());
            }
        }
    }

    #[test]
    fn no_poison_config_means_no_poisoner() {
        let cfg = EcosystemConfig {
            poison: None,
            ..Default::default()
        };
        let mut rng = RngStream::new(3, "botnet-test");
        let roster = ProgramRoster::generate(&cfg, &mut rng);
        let botnets = generate_botnets(&cfg, &roster, &mut rng);
        assert!(botnets.iter().all(|b| !b.poisons));
    }
}
