//! Scenario knobs for ground-truth generation.
//!
//! Every parameter of the simulated ecosystem lives here, with
//! defaults shaped to reproduce the paper's qualitative findings at a
//! laptop-friendly scale (≈1.5–2.5 M delivered copies over 92 days —
//! the paper's feeds total >1 B messages over the same period; the
//! analyses only depend on relative structure).

/// Parameters of a bounded-Pareto volume law.
#[derive(Debug, Clone, Copy)]
pub struct VolumeLaw {
    /// Tail exponent (smaller ⇒ heavier tail).
    pub alpha: f64,
    /// Minimum volume (delivered copies).
    pub min: f64,
    /// Maximum volume (delivered copies).
    pub max: f64,
}

/// A campaign targeting mix; fields need not sum to 1 (they are
/// normalised when sampled).
#[derive(Debug, Clone, Copy)]
pub struct TargetMixConfig {
    /// Weight of brute-force address lists (reaches MX honeypots).
    pub brute: f64,
    /// Weight of harvested lists (reaches honey accounts).
    pub harvested: f64,
    /// Weight of purchased high-quality lists (real users only).
    pub purchased: f64,
    /// Weight of social/compromised-account lists (real users only).
    pub social: f64,
}

impl TargetMixConfig {
    /// Sum of weights.
    pub fn total(&self) -> f64 {
        self.brute + self.harvested + self.purchased + self.social
    }
}

/// The Rustock-style poisoning incident (§4.1.1).
#[derive(Debug, Clone, Copy)]
pub struct PoisonConfig {
    /// Day the poisoning starts.
    pub start_day: u64,
    /// Length of the poisoning window in days.
    pub days: u64,
    /// Delivered poison copies over the window (scaled by
    /// `volume_scale`).
    pub volume: u64,
    /// Mean copies advertising the same random domain before a fresh
    /// one is generated (the paper saw ~12 samples per unique domain
    /// in `Bot`).
    pub copies_per_domain: f64,
    /// Fraction of poison domains that happen to be registered
    /// (Table 2 shows <1 % DNS for `Bot`).
    pub registered_prob: f64,
}

/// All ecosystem generation knobs.
#[derive(Debug, Clone)]
pub struct EcosystemConfig {
    /// Measurement window length in days (paper: Aug 1 – Oct 31 2010).
    pub days: u64,
    /// Multiplies campaign counts. 1.0 ≈ default scenario.
    pub campaign_scale: f64,
    /// Multiplies campaign volumes.
    pub volume_scale: f64,

    // ------------------------------------------------ programs
    /// Number of tagged affiliate programs (Click Trajectories: 45).
    pub tagged_programs: usize,
    /// RX-Promotion affiliate count (paper: 846 identifiers).
    pub rx_affiliates: usize,
    /// Affiliates per non-RX tagged program (uniform range).
    pub tagged_affiliates: (usize, usize),
    /// Number of untagged programs (casino/dating/e-book verticals).
    pub untagged_programs: usize,
    /// Affiliates per untagged program (uniform range).
    pub untagged_affiliates: (usize, usize),
    /// Log-normal parameters of affiliate annual revenue (USD).
    pub revenue_mu: f64,
    /// Log-normal sigma of affiliate annual revenue.
    pub revenue_sigma: f64,

    // ------------------------------------------------ botnets
    /// Number of botnets.
    pub botnets: usize,
    /// How many of them the `Bot` feed monitors.
    pub monitored_botnets: usize,
    /// Distinct programs botnet operators advertise for, across all
    /// botnets (paper Fig 4: `Bot` covered only 15 programs).
    pub botnet_program_pool: usize,
    /// Volume multiplier for botnet-delivered campaigns.
    pub botnet_volume_multiplier: f64,
    /// Campaign-rate multiplier for botnet-operator affiliates (they
    /// spam full-time).
    pub operator_campaign_multiplier: f64,
    /// Probability an operator affiliate's campaign is delivered by
    /// their own botnet (loud); otherwise they behave like direct
    /// spammers.
    pub operator_botnet_prob: f64,
    /// Probability a non-operator loud campaign rents a botnet.
    pub botnet_rental_prob: f64,
    /// The poisoning incident; `None` disables it (ablation).
    pub poison: Option<PoisonConfig>,

    // ------------------------------------------------ campaigns
    /// Mean campaigns per affiliate over the window (Poisson; RX
    /// affiliates are guaranteed at least one).
    pub campaigns_per_affiliate: f64,
    /// Couples affiliate revenue to spam output: campaign volume is
    /// multiplied by `(revenue / exp(revenue_mu))^exponent` (clamped),
    /// and campaign count by its square root. An affiliate earns a lot
    /// *because* they spam a lot — the correlation behind Fig 6's
    /// revenue-skewed blacklist coverage.
    pub revenue_volume_exponent: f64,
    /// Base probability a direct (non-botnet) campaign is loud; the
    /// effective probability is `loud_fraction × revenue_factor²`
    /// (clamped to 0.85), concentrating loud campaigns in the few
    /// high-revenue affiliates — the reason honeypot feeds see many
    /// tagged *domains* but few distinct *affiliates* (Fig 5).
    pub loud_fraction: f64,
    /// Probability a loud campaign rents a botnet.
    pub botnet_delivery_fraction: f64,
    /// Trickle (deliverability-test) phase length in days, uniform.
    pub trickle_days: (f64, f64),
    /// Fraction of campaign volume spent in the trickle phase.
    pub trickle_volume_fraction: f64,
    /// Volume law for loud campaigns.
    pub loud_volume: VolumeLaw,
    /// Volume law for quiet campaigns.
    pub quiet_volume: VolumeLaw,
    /// Clamp range for the number of storefront domains a loud
    /// campaign rotates through.
    pub loud_domains: (usize, usize),
    /// Clamp range for quiet campaigns.
    pub quiet_domains: (usize, usize),
    /// Copies sent per domain before a loud campaign rotates (domains
    /// ≈ volume / this, clamped to `loud_domains`).
    pub loud_copies_per_domain: f64,
    /// Copies per domain for quiet campaigns (deliverability-focused
    /// spammers rotate fast to stay ahead of blacklists).
    pub quiet_copies_per_domain: f64,
    /// Mean active lifetime of one spam domain, days (exponential,
    /// clamped to [1, 14]).
    pub domain_lifetime_days: f64,
    /// Targeting mix of loud campaigns' blast phase.
    pub loud_mix: TargetMixConfig,
    /// Targeting mix of quiet campaigns' blast phase.
    pub quiet_mix: TargetMixConfig,
    /// Targeting mix of every trickle phase (real users only).
    pub trickle_mix: TargetMixConfig,
    /// Number of harvest vectors (forums, web pages, mailing lists…).
    pub harvest_vectors: u8,
    /// Probability that a direct loud campaign's brute-force list is
    /// fresh (zone-file derived, hence includes newly-registered MX
    /// honeypot domains). Botnet lists are always fresh.
    pub direct_fresh_list_prob: f64,

    // ------------------------------------------------ landing domains
    /// Probability a campaign advertises through landing domains.
    pub landing_campaign_prob: f64,
    /// Probability an advertised copy uses the landing rather than the
    /// storefront domain (within landing campaigns).
    pub advertise_landing_prob: f64,
    /// Probability a landing domain is a compromised/free-hosting
    /// *benign* domain instead of a fresh registration.
    pub landing_compromised_prob: f64,

    // ------------------------------------------------ web spam corpus
    /// Spam-advertised domains that never appear in e-mail: forum/SEO
    /// ("search-redirection") spam. Only the hybrid feed's non-mail
    /// source sees them — the paper's explanation for `Hyb`'s many
    /// exclusive live domains yet tiny mail-volume coverage (§4.2.2).
    /// Scaled by `campaign_scale`.
    pub webspam_domains: usize,
    /// Fraction of web-spam domains fronting *tagged* programs.
    pub webspam_tagged_fraction: f64,
    /// Registration rate of web-spam domains (forum/SEO spam cites a
    /// lot of dead or junk domains — the source of `Hyb`'s depressed
    /// DNS purity in Table 2).
    pub webspam_registered_prob: f64,

    // ------------------------------------------------ benign universe
    /// Size of the benign popular-domain universe.
    pub benign_domains: usize,
    /// How many benign domains (by popularity) carry an Alexa rank.
    pub alexa_list_size: usize,
    /// Fraction of benign domains listed in the ODP.
    pub odp_fraction: f64,
    /// Zipf exponent of benign-domain popularity.
    pub benign_zipf_s: f64,
    /// Probability a spam copy carries one benign chaff URL.
    pub chaff_prob: f64,

    // ------------------------------------------------ domain ground truth
    /// Probability a storefront domain is DNS-registered.
    pub storefront_registered_prob: f64,
    /// Probability a registered storefront responds over HTTP.
    pub storefront_live_prob: f64,
    /// Probability a fresh landing domain is live.
    pub landing_live_prob: f64,

    // ------------------------------------------------ memory budget
    /// Peak bytes the streaming event core may hold resident at once
    /// (`--max-mem-bytes`). `None` uses [`DEFAULT_MEM_BUDGET`]. The
    /// budget decides whether the sorted event cache is built and, when
    /// it is not, how many rows the streaming chunk/bucket buffers may
    /// hold. It never changes any output byte — cached and streaming
    /// runs replay the exact same draw sequence.
    pub max_mem_bytes: Option<u64>,
}

/// Default streaming-memory budget: 1 GiB, comfortably inside the
/// reference container while letting paper scale (≈4 M events) keep
/// the sorted event cache resident.
pub const DEFAULT_MEM_BUDGET: u64 = 1 << 30;

impl Default for EcosystemConfig {
    fn default() -> Self {
        EcosystemConfig {
            days: 92,
            campaign_scale: 1.0,
            volume_scale: 1.0,

            tagged_programs: 45,
            rx_affiliates: 846,
            tagged_affiliates: (3, 12),
            untagged_programs: 60,
            untagged_affiliates: (6, 24),
            revenue_mu: 9.8,
            revenue_sigma: 1.7,

            botnets: 6,
            monitored_botnets: 4,
            botnet_program_pool: 15,
            botnet_volume_multiplier: 2.5,
            operator_campaign_multiplier: 6.0,
            operator_botnet_prob: 0.85,
            botnet_rental_prob: 0.05,
            poison: Some(PoisonConfig {
                start_day: 34,
                days: 20,
                volume: 650_000,
                copies_per_domain: 2.0,
                registered_prob: 0.004,
            }),

            campaigns_per_affiliate: 1.15,
            revenue_volume_exponent: 0.45,
            loud_fraction: 0.02,
            botnet_delivery_fraction: 0.55,
            trickle_days: (1.0, 3.0),
            trickle_volume_fraction: 0.07,
            loud_volume: VolumeLaw {
                alpha: 1.05,
                min: 400.0,
                max: 80_000.0,
            },
            quiet_volume: VolumeLaw {
                alpha: 1.4,
                min: 50.0,
                max: 900.0,
            },
            loud_domains: (6, 100),
            quiet_domains: (2, 10),
            loud_copies_per_domain: 150.0,
            quiet_copies_per_domain: 35.0,
            domain_lifetime_days: 4.0,
            loud_mix: TargetMixConfig {
                brute: 0.50,
                harvested: 0.30,
                purchased: 0.15,
                social: 0.05,
            },
            quiet_mix: TargetMixConfig {
                brute: 0.0,
                harvested: 0.012,
                purchased: 0.64,
                social: 0.348,
            },
            trickle_mix: TargetMixConfig {
                brute: 0.0,
                harvested: 0.0,
                purchased: 0.7,
                social: 0.3,
            },
            harvest_vectors: 5,
            direct_fresh_list_prob: 0.20,

            landing_campaign_prob: 0.30,
            advertise_landing_prob: 0.8,
            landing_compromised_prob: 0.35,

            webspam_domains: 13_000,
            webspam_tagged_fraction: 0.08,
            webspam_registered_prob: 0.62,

            benign_domains: 2_600,
            alexa_list_size: 1_200,
            odp_fraction: 0.55,
            benign_zipf_s: 1.05,
            chaff_prob: 0.65,

            storefront_registered_prob: 0.99,
            storefront_live_prob: 0.93,
            landing_live_prob: 0.90,

            max_mem_bytes: None,
        }
    }
}

impl EcosystemConfig {
    /// Scales the scenario uniformly: campaign counts and volumes are
    /// both multiplied by `factor`. Useful for fast tests
    /// (`with_scale(0.02)`) and stress runs (`with_scale(4.0)`).
    pub fn with_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale must be positive");
        self.campaign_scale *= factor;
        self.volume_scale *= factor.sqrt();
        if let Some(p) = &mut self.poison {
            p.volume = ((p.volume as f64) * factor).round().max(1.0) as u64;
        }
        // Keep the benign universe roughly proportional so purity
        // percentages survive scaling, with a floor for tiny runs.
        self.benign_domains = ((self.benign_domains as f64 * factor.sqrt()) as usize).max(400);
        self.alexa_list_size = ((self.alexa_list_size as f64 * factor.sqrt()) as usize).max(200);
        self
    }

    /// Validates cross-field invariants; called by the generator.
    pub fn validate(&self) -> Result<(), String> {
        if self.days == 0 {
            return Err("days must be positive".into());
        }
        if self.monitored_botnets > self.botnets {
            return Err("monitored_botnets exceeds botnets".into());
        }
        if self.tagged_programs == 0 {
            return Err("need at least one tagged program (RX)".into());
        }
        if self.alexa_list_size > self.benign_domains {
            return Err("alexa_list_size exceeds benign universe".into());
        }
        for (name, law) in [("loud", &self.loud_volume), ("quiet", &self.quiet_volume)] {
            if !(law.alpha > 0.0 && law.min > 0.0 && law.max > law.min) {
                return Err(format!("invalid {name} volume law"));
            }
        }
        for (name, mix) in [
            ("loud", &self.loud_mix),
            ("quiet", &self.quiet_mix),
            ("trickle", &self.trickle_mix),
        ] {
            if mix.total() <= 0.0 {
                return Err(format!("{name} mix has no mass"));
            }
        }
        if self.harvest_vectors == 0 || self.harvest_vectors > 8 {
            return Err("harvest_vectors must be in 1..=8".into());
        }
        if self.max_mem_bytes == Some(0) {
            return Err("max_mem_bytes must be positive".into());
        }
        Ok(())
    }

    /// Effective streaming-memory budget in bytes.
    pub fn mem_budget(&self) -> u64 {
        self.max_mem_bytes.unwrap_or(DEFAULT_MEM_BUDGET)
    }

    /// Peak bytes building and holding the sorted event cache costs:
    /// the generation-order columns, the widest scatter column (the
    /// 8-byte time column, transient during the column-wise re-sort)
    /// and the rank permutation.
    pub fn cache_peak_bytes(events: u64) -> u64 {
        events * (crate::buffer::EventBuffer::bytes_per_event() as u64 + 8 + 4)
    }

    /// Whether a log of `events` rows should keep the sorted event
    /// cache resident under this budget.
    pub fn wants_cache(&self, events: u64) -> bool {
        Self::cache_peak_bytes(events) <= self.mem_budget()
    }

    /// Rows the streaming chunk/bucket buffers may hold under this
    /// budget once the always-resident rank permutation (4 bytes per
    /// event) is paid for. At least 1 — a starved budget degrades to
    /// row-at-a-time streaming rather than failing.
    pub fn budget_rows(&self, events: u64) -> usize {
        let avail = self.mem_budget().saturating_sub(4 * events);
        let rows = avail / crate::buffer::EventBuffer::bytes_per_event() as u64;
        rows.clamp(1, events.max(1)) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        EcosystemConfig::default().validate().unwrap();
    }

    #[test]
    fn scale_adjusts_counts() {
        let c = EcosystemConfig::default().with_scale(0.25);
        assert!((c.campaign_scale - 0.25).abs() < 1e-12);
        assert!((c.volume_scale - 0.5).abs() < 1e-12);
        assert!(c.benign_domains >= 400);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_errors() {
        let c = EcosystemConfig {
            monitored_botnets: 99,
            ..Default::default()
        };
        assert!(c.validate().is_err());

        let mut c = EcosystemConfig::default();
        c.alexa_list_size = c.benign_domains + 1;
        assert!(c.validate().is_err());

        let mut c = EcosystemConfig::default();
        c.loud_volume.max = 1.0;
        assert!(c.validate().is_err());

        let c = EcosystemConfig {
            harvest_vectors: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = EcosystemConfig::default().with_scale(0.0);
    }
}
