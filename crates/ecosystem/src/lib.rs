//! # taster-ecosystem
//!
//! The ground-truth spam ecosystem simulator.
//!
//! The paper's ten feeds observed the *same* underlying phenomenon —
//! the 2010 spam ecosystem — through different apertures. That data is
//! proprietary and gone, so this crate rebuilds the phenomenon itself:
//! affiliate programs and their affiliates, campaigns with heavy-tailed
//! volumes and distinct targeting strategies, botnet and direct
//! delivery, domain rotation, benign/chaff pollution, and the Rustock
//! random-domain poisoning incident. The output is a deterministic,
//! time-sorted stream of [`event::SpamEvent`]s plus a complete domain
//! registry ([`domains::DomainUniverse`]) that the crawler and feed
//! layers consume.
//!
//! ## Structure of the simulation
//!
//! * [`program`] — the affiliate-marketing layer: 45 *tagged* programs
//!   (pharmaceutical, replica, "OEM" software — the Click Trajectories
//!   classification) including **RX-Promotion** with its 846 affiliate
//!   identifiers and leaked annual revenue, plus untagged verticals
//!   (casino, dating, e-books…) that make live ≫ tagged, as observed.
//! * [`botnet`] — botnets and the poisoning window (§4.1.1).
//! * [`campaign`] — campaigns: every campaign has a low-volume
//!   *trickle* phase (deliverability testing against real users)
//!   followed by a *blast* phase; loud campaigns blast brute-force and
//!   harvested address lists, quiet ones stay on purchased/social
//!   lists. This two-phase structure is what makes human/blacklist
//!   feeds early and honeypots days late (Fig 9).
//! * [`domains`] — the domain registry: storefronts, landing/redirect
//!   domains, the benign (Alexa/ODP) universe, and poison domains.
//! * [`event`] — per-delivered-copy spam events.
//! * [`ground_truth`] — ties it together: [`ground_truth::GroundTruth`]
//!   is a pure function of ([`config::EcosystemConfig`], seed).

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod botnet;
pub mod buffer;
pub mod campaign;
pub mod config;
pub mod domains;
pub mod event;
pub mod ground_truth;
pub mod ids;
pub mod program;

pub use config::EcosystemConfig;
pub use ground_truth::GroundTruth;
pub use ids::{AffiliateId, BotnetId, CampaignId, ProgramId, Vertical};
