//! Identifier newtypes and the vertical taxonomy.

/// Identifies an affiliate program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u16);

/// Identifies an affiliate within the whole roster (not per-program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AffiliateId(pub u32);

/// Identifies a spam campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CampaignId(pub u32);

/// Identifies a botnet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BotnetId(pub u8);

impl ProgramId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl AffiliateId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl CampaignId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BotnetId {
    /// Index form.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Goods verticals advertised via spam.
///
/// The first three are the *tagged* categories of the Click
/// Trajectories classification used by the paper ("pharmaceuticals,
/// replica goods, software — among the most popular classes of goods
/// advertised via spam", §3.4). The remainder are real spam verticals
/// that the classification did **not** tag; they exist here so that the
/// live-domain universe vastly exceeds the tagged universe, as in the
/// paper (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vertical {
    /// Online pharmacies selling generic medications.
    Pharma,
    /// Replica luxury goods stores.
    Replica,
    /// "OEM" software stores selling unlicensed software.
    Software,
    /// Online casino/gambling offers (untagged).
    Casino,
    /// Dating sites (untagged).
    Dating,
    /// E-book / get-rich-quick offers (untagged).
    Ebook,
}

impl Vertical {
    /// Whether the Click Trajectories signatures cover this vertical.
    pub fn is_tagged(self) -> bool {
        matches!(
            self,
            Vertical::Pharma | Vertical::Replica | Vertical::Software
        )
    }

    /// Short lowercase label used in generated program names.
    pub fn label(self) -> &'static str {
        match self {
            Vertical::Pharma => "pharma",
            Vertical::Replica => "replica",
            Vertical::Software => "software",
            Vertical::Casino => "casino",
            Vertical::Dating => "dating",
            Vertical::Ebook => "ebook",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tagged_verticals_match_paper() {
        assert!(Vertical::Pharma.is_tagged());
        assert!(Vertical::Replica.is_tagged());
        assert!(Vertical::Software.is_tagged());
        assert!(!Vertical::Casino.is_tagged());
        assert!(!Vertical::Dating.is_tagged());
        assert!(!Vertical::Ebook.is_tagged());
    }

    #[test]
    fn id_indexing() {
        assert_eq!(ProgramId(3).index(), 3);
        assert_eq!(AffiliateId(9).index(), 9);
        assert_eq!(CampaignId(1).index(), 1);
        assert_eq!(BotnetId(2).index(), 2);
    }
}
