//! Campaigns: who advertises what, when, how loudly, and to whom.
//!
//! Two structural ideas carry most of the paper's findings:
//!
//! 1. **Loud vs quiet.** Loud campaigns blast brute-force and harvested
//!    address lists through botnets or bulk mailers — they are what MX
//!    honeypots and honey accounts see. Quiet campaigns buy targeted
//!    lists and focus on deliverability — only real-user feeds (`Hu`)
//!    and broad blacklists ever see them (§2, §3.2).
//! 2. **Trickle then blast.** Every campaign starts with a short
//!    deliverability-testing trickle against real users before the
//!    blast. Feeds anchored on real users therefore observe domains
//!    days before honeypots do (Fig 9 vs Fig 10).

use crate::botnet::Botnet;
use crate::config::{EcosystemConfig, TargetMixConfig};
use crate::domains::DomainUniverse;
use crate::ids::{AffiliateId, BotnetId, CampaignId, ProgramId};
use crate::program::ProgramRoster;
use rand::{Rng, RngExt};
use taster_domain::fx::{FxHashMap, FxHashSet};
use taster_domain::DomainId;
use taster_sim::{SimTime, TimeWindow, DAY};
use taster_stats::sample::{exponential, poisson, BoundedPareto};

/// How a campaign's messages are delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeliveryVector {
    /// The spammer's own/bulk mailing infrastructure.
    Direct,
    /// A botnet (the operator's own, or rented).
    Botnet(BotnetId),
}

/// Loudness class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CampaignStyle {
    /// High-volume, broadly-targeted.
    Loud,
    /// Low-volume, deliverability-focused.
    Quiet,
}

/// Which class of address list a delivered copy was addressed through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetClass {
    /// Brute-force generated lists (every domain with a valid MX).
    BruteForce,
    /// Harvested from the web/forums/lists; carries the vector index.
    Harvested(u8),
    /// Purchased high-quality list — real users only.
    Purchased,
    /// Social-network / compromised-address-book lists — real users.
    Social,
}

/// A normalised targeting mix, sampleable per message.
#[derive(Debug, Clone, Copy)]
pub struct TargetingMix {
    brute: f64,
    harvested: f64,
    purchased: f64,
    // social is the remainder
}

impl TargetingMix {
    /// Normalises a config mix.
    pub fn from_config(c: &TargetMixConfig) -> TargetingMix {
        let t = c.total();
        assert!(t > 0.0, "mix has no mass");
        TargetingMix {
            brute: c.brute / t,
            harvested: c.harvested / t,
            purchased: c.purchased / t,
        }
    }

    /// Samples a target class; harvested copies pick one vector from
    /// `harvest_mask` (a non-zero bitmask over vectors).
    pub fn sample<R: Rng>(&self, harvest_mask: u8, rng: &mut R) -> TargetClass {
        let u: f64 = rng.random();
        if u < self.brute {
            TargetClass::BruteForce
        } else if u < self.brute + self.harvested {
            TargetClass::Harvested(pick_bit(harvest_mask, rng))
        } else if u < self.brute + self.harvested + self.purchased {
            TargetClass::Purchased
        } else {
            TargetClass::Social
        }
    }

    /// The brute-force share of this mix.
    pub fn brute_share(&self) -> f64 {
        self.brute
    }
}

/// Picks a uniformly random set bit of `mask` (mask must be non-zero).
fn pick_bit<R: Rng>(mask: u8, rng: &mut R) -> u8 {
    debug_assert!(mask != 0);
    let n = mask.count_ones();
    let mut k = rng.random_range(0..n);
    let mut last = 0;
    for bit in 0..8u8 {
        if mask & (1 << bit) != 0 {
            if k == 0 {
                return bit;
            }
            k -= 1;
            last = bit;
        }
    }
    // `k < count_ones(mask)`, so the loop always returns; the highest
    // set bit is an unreachable fallback.
    last
}

/// One rotated domain of a campaign.
#[derive(Debug, Clone, Copy)]
pub struct DomainPlan {
    /// The storefront domain behind this rotation slot.
    pub storefront: DomainId,
    /// Optional landing (redirect) domain advertised instead of the
    /// storefront for most copies.
    pub landing: Option<DomainId>,
    /// The slot's active window.
    pub window: TimeWindow,
    /// End of the slot's warm-up (deliverability-test) sub-phase:
    /// between `window.start` and this instant the domain is advertised
    /// only to real users at low rate; the blast starts here. This is
    /// why human/blacklist feeds see every domain days before the
    /// honeypots do (Fig 9).
    pub warmup_end: SimTime,
}

impl DomainPlan {
    /// The warm-up sub-window.
    pub fn warmup(&self) -> TimeWindow {
        TimeWindow::new(self.window.start, self.warmup_end)
    }

    /// The blast sub-window.
    pub fn blast(&self) -> TimeWindow {
        TimeWindow::new(self.warmup_end, self.window.end)
    }
}

/// A planned campaign.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// Campaign id; dense.
    pub id: CampaignId,
    /// Advertising affiliate.
    pub affiliate: AffiliateId,
    /// Program being advertised.
    pub program: ProgramId,
    /// Loudness class.
    pub style: CampaignStyle,
    /// Delivery vector.
    pub delivery: DeliveryVector,
    /// Blast-phase targeting mix.
    pub mix: TargetingMix,
    /// Trickle-phase targeting mix (real users only).
    pub trickle_mix: TargetingMix,
    /// Which MX honeypot address spaces the campaign's brute-force
    /// list covers (bit *i* = honeypot *i*).
    pub brute_mask: u8,
    /// Which harvest vectors the campaign's harvested lists came from.
    pub harvest_mask: u8,
    /// Trickle (deliverability-test) window.
    pub trickle: TimeWindow,
    /// Blast window (starts when the trickle ends).
    pub blast: TimeWindow,
    /// Total delivered copies across both phases.
    pub volume: u64,
    /// Domain rotation plan, chronologically ordered, spanning the
    /// blast window (the trickle uses the first slot's domain).
    pub domains: Vec<DomainPlan>,
    /// Whether this is the Rustock-style poisoning pseudo-campaign.
    pub poison: bool,
}

impl Campaign {
    /// Full activity window (trickle start → blast end).
    pub fn window(&self) -> TimeWindow {
        TimeWindow::new(self.trickle.start, self.blast.end)
    }
}

/// Plans every campaign of the scenario.
pub fn plan_campaigns<R: Rng>(
    config: &EcosystemConfig,
    roster: &ProgramRoster,
    botnets: &[Botnet],
    universe: &mut DomainUniverse,
    rng: &mut R,
) -> Vec<Campaign> {
    let mut campaigns = Vec::new();
    let operator_of: FxHashMap<AffiliateId, BotnetId> = botnets
        .iter()
        .flat_map(|b| b.operator_affiliates.iter().map(move |&a| (a, b.id)))
        .collect();

    let loud_law = BoundedPareto::new(
        config.loud_volume.alpha,
        config.loud_volume.min,
        config.loud_volume.max,
    );
    let quiet_law = BoundedPareto::new(
        config.quiet_volume.alpha,
        config.quiet_volume.min,
        config.quiet_volume.max,
    );
    let loud_mix = TargetingMix::from_config(&config.loud_mix);
    let quiet_mix = TargetingMix::from_config(&config.quiet_mix);
    let trickle_mix = TargetingMix::from_config(&config.trickle_mix);

    let median_revenue = config.revenue_mu.exp();
    // Every program has a flagship: its top-earning affiliate, who
    // blasts (this is why honeypot feeds cover most *programs* while
    // seeing very few distinct *affiliates* — Fig 4 vs Fig 5).
    let flagships: FxHashSet<AffiliateId> = roster
        .programs
        .iter()
        .filter_map(|p| {
            roster
                .affiliates_of(p.id)
                .iter()
                .max_by(|&&a, &&b| {
                    roster
                        .affiliate(a)
                        .annual_revenue_usd
                        .total_cmp(&roster.affiliate(b).annual_revenue_usd)
                })
                .copied()
        })
        .collect();
    for aff in &roster.affiliates {
        let operator = operator_of.get(&aff.id).copied();
        // Revenue couples to output: big earners spam more and louder.
        let revenue_factor = (aff.annual_revenue_usd / median_revenue)
            .powf(config.revenue_volume_exponent)
            .clamp(0.2, 8.0);
        let rate = config.campaigns_per_affiliate
            * config.campaign_scale
            * revenue_factor.sqrt()
            * if operator.is_some() {
                config.operator_campaign_multiplier
            } else {
                1.0
            };
        let mut n = poisson(rng, rate);
        // RX affiliates run at least one campaign at full scale so the
        // 846-identifier universe of Fig 5 is populated.
        if n == 0 && aff.program == crate::program::RX_PROGRAM && config.campaign_scale >= 1.0 {
            n = 1;
        }
        let flagship = flagships.contains(&aff.id);
        for _ in 0..n {
            let id = CampaignId(campaigns.len() as u32);
            campaigns.push(plan_one(
                id,
                aff.id,
                aff.program,
                operator,
                revenue_factor,
                flagship,
                config,
                botnets,
                universe,
                rng,
                &loud_law,
                &quiet_law,
                &loud_mix,
                &quiet_mix,
                &trickle_mix,
            ));
        }
    }
    campaigns
}

#[allow(clippy::too_many_arguments)]
fn plan_one<R: Rng>(
    id: CampaignId,
    affiliate: AffiliateId,
    program: ProgramId,
    operator: Option<BotnetId>,
    revenue_factor: f64,
    flagship: bool,
    config: &EcosystemConfig,
    botnets: &[Botnet],
    universe: &mut DomainUniverse,
    rng: &mut R,
    loud_law: &BoundedPareto,
    quiet_law: &BoundedPareto,
    loud_mix: &TargetingMix,
    quiet_mix: &TargetingMix,
    trickle_mix: &TargetingMix,
) -> Campaign {
    // Delivery and loudness. Loudness concentrates in high-revenue
    // affiliates: blasting costs money, and blasting is how the big
    // earners got big.
    let mut loud_prob = (config.loud_fraction * revenue_factor * revenue_factor).clamp(0.0, 0.85);
    if flagship {
        loud_prob = loud_prob.max(0.5);
    }
    let delivery = match operator {
        Some(b) if rng.random_bool(config.operator_botnet_prob) => DeliveryVector::Botnet(b),
        _ => {
            if rng.random_bool(loud_prob * config.botnet_rental_prob) && !botnets.is_empty() {
                DeliveryVector::Botnet(BotnetId(rng.random_range(0..botnets.len()) as u8))
            } else {
                DeliveryVector::Direct
            }
        }
    };
    let style = match delivery {
        DeliveryVector::Botnet(_) => CampaignStyle::Loud,
        DeliveryVector::Direct => {
            if rng.random_bool(loud_prob) {
                CampaignStyle::Loud
            } else {
                CampaignStyle::Quiet
            }
        }
    };

    // Volume.
    let mut volume = match style {
        CampaignStyle::Loud => loud_law.sample(rng),
        CampaignStyle::Quiet => quiet_law.sample(rng),
    } * config.volume_scale
        * revenue_factor;
    if let DeliveryVector::Botnet(_) = delivery {
        volume *= config.botnet_volume_multiplier;
    }
    let volume = (volume.round() as u64).max(8);

    // Address lists. The actively-developed (monitored-generation)
    // botnets regenerate their lists from fresh zone files — these are
    // the lists that cover the newly-registered mx3 portfolio, which
    // is why mx3's volume mix tracks the Bot feed (Figs 7–8).
    let brute_mask = match delivery {
        DeliveryVector::Botnet(b) if botnets[b.index()].monitored => 0b111,
        DeliveryVector::Botnet(_) => 0b011,
        DeliveryVector::Direct => {
            if rng.random_bool(config.direct_fresh_list_prob) {
                0b111
            } else {
                0b011 // stale lists: abandoned-domain honeypots only
            }
        }
    };
    let vectors = config.harvest_vectors;
    let mut harvest_mask = 0u8;
    for _ in 0..rng.random_range(1..=3u8) {
        harvest_mask |= 1 << rng.random_range(0..vectors);
    }

    // Rotation depth follows volume: spammers register a fresh domain
    // after a target number of copies, bounded by the style's clamp
    // range. This keeps per-domain observability stable across scales.
    let (clamp, per_domain) = match style {
        CampaignStyle::Loud => (config.loud_domains, config.loud_copies_per_domain),
        CampaignStyle::Quiet => (config.quiet_domains, config.quiet_copies_per_domain),
    };
    let n_domains =
        ((volume as f64 / per_domain).round() as usize).clamp(clamp.0.max(1), clamp.1.max(1));

    // Domain rotation: sequential slots with exponential lifetimes
    // (each including its own warm-up), compressed when the rotation
    // would outlast the measurement window (fast-rotating quiet
    // campaigns).
    let min_life = config.trickle_days.0 + 0.75;
    let lifetimes: Vec<f64> = (0..n_domains)
        .map(|_| exponential(rng, config.domain_lifetime_days).clamp(min_life, 14.0))
        .collect();
    let available = (config.days as f64 - 0.5).max(2.0 * min_life);
    let total_life: f64 = lifetimes.iter().sum();
    // Heavy rotators run several domains *in parallel* — a sequential
    // rotation of 100 domains with multi-day warm-ups cannot fit a
    // three-month window, and real campaigns don't try to. Slots are
    // dealt round-robin across the minimum number of parallel lanes
    // that fits; each lane is sequential.
    let lanes = ((total_life / available).ceil() as usize).max(1);
    let mut lane_offsets = vec![0.0f64; lanes];
    // Start day leaves room for the longest lane (approximated by the
    // even split plus the longest single slot as slack).
    let max_lane_len = (total_life / lanes as f64) + lifetimes.iter().cloned().fold(0.0, f64::max);
    let latest_start = (config.days as f64 - max_lane_len.min(available)).max(0.0);
    let start_day: f64 = rng.random::<f64>() * latest_start;
    let campaign_start = SimTime((start_day * DAY as f64) as u64);

    // Landing configuration.
    let uses_landing = rng.random_bool(config.landing_campaign_prob);

    let horizon = config.days as f64;
    let mut domains = Vec::with_capacity(n_domains);
    for (i, &life) in lifetimes.iter().enumerate() {
        let lane = i % lanes;
        let slot_begin_day = (start_day + lane_offsets[lane]).min(horizon - min_life);
        let slot_end_day = (slot_begin_day + life).min(horizon);
        lane_offsets[lane] += life;
        let slot_start = SimTime((slot_begin_day * DAY as f64) as u64);
        let slot_end = SimTime((slot_end_day * DAY as f64) as u64);
        let slot_len_days = slot_end_day - slot_begin_day;
        let warmup_days = rng
            .random_range(config.trickle_days.0..=config.trickle_days.1)
            .min(slot_len_days * 0.6);
        let warmup_end = slot_start.plus((warmup_days * DAY as f64) as u64);
        let storefront = universe.register_storefront(config, program, affiliate, rng);
        let landing = if uses_landing {
            Some(if rng.random_bool(config.landing_compromised_prob) {
                universe.compromise_benign(storefront, rng)
            } else {
                universe.register_landing(config, storefront, rng)
            })
        } else {
            None
        };
        domains.push(DomainPlan {
            storefront,
            landing,
            window: TimeWindow::new(slot_start, slot_end),
            warmup_end,
        });
    }
    // Campaign-level phases: the first slot's warm-up is the campaign
    // trickle; everything after it is blast.
    // The slot loop always pushes at least one plan; the fallbacks
    // keep an (unreachable) empty campaign well-formed.
    let campaign_end = domains
        .iter()
        .map(|p| p.window.end)
        .max()
        .unwrap_or(campaign_start);
    let warmup_end = domains.first().map_or(campaign_start, |p| p.warmup_end);
    let trickle = TimeWindow::new(campaign_start, warmup_end);
    let blast = TimeWindow::new(warmup_end, campaign_end);

    Campaign {
        id,
        affiliate,
        program,
        style,
        delivery,
        mix: match style {
            CampaignStyle::Loud => *loud_mix,
            CampaignStyle::Quiet => *quiet_mix,
        },
        trickle_mix: *trickle_mix,
        brute_mask,
        harvest_mask,
        trickle,
        blast,
        volume,
        domains,
        poison: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::botnet::generate_botnets;
    use taster_sim::RngStream;

    fn setup(scale: f64) -> (EcosystemConfig, ProgramRoster, Vec<Botnet>, Vec<Campaign>) {
        let cfg = EcosystemConfig::default().with_scale(scale);
        let mut rng = RngStream::new(11, "campaign-test");
        let roster = ProgramRoster::generate(&cfg, &mut rng);
        let botnets = generate_botnets(&cfg, &roster, &mut rng);
        let mut universe = DomainUniverse::new(&cfg, &mut rng);
        let campaigns = plan_campaigns(&cfg, &roster, &botnets, &mut universe, &mut rng);
        (cfg, roster, botnets, campaigns)
    }

    #[test]
    fn campaigns_fit_the_window_and_are_wellformed() {
        let (cfg, _, _, campaigns) = setup(0.05);
        assert!(!campaigns.is_empty());
        for c in &campaigns {
            assert_eq!(c.trickle.end, c.blast.start);
            assert!(
                c.blast.end.secs() <= (cfg.days + 1) * DAY,
                "{:?}",
                c.window()
            );
            assert!(!c.domains.is_empty());
            assert!(c.volume >= 8);
            // Slots live inside the campaign window (possibly in
            // parallel lanes); each slot's warm-up sits inside the
            // slot; the first slot anchors the campaign trickle.
            assert_eq!(c.domains[0].window.start, c.trickle.start);
            assert_eq!(c.domains[0].warmup_end, c.trickle.end);
            let max_end = c.domains.iter().map(|p| p.window.end).max().unwrap();
            assert_eq!(max_end, c.blast.end);
            for p in &c.domains {
                assert!(p.window.start >= c.trickle.start);
                assert!(p.window.end <= c.blast.end);
                assert!(p.warmup_end > p.window.start);
                assert!(p.warmup_end < p.window.end);
                assert_eq!(p.warmup().end, p.blast().start);
            }
            assert_ne!(c.brute_mask & 0b111, 0);
            assert_ne!(c.harvest_mask, 0);
        }
    }

    #[test]
    fn ids_are_dense() {
        let (_, _, _, campaigns) = setup(0.05);
        for (i, c) in campaigns.iter().enumerate() {
            assert_eq!(c.id.index(), i);
        }
    }

    #[test]
    fn botnet_campaigns_are_loud_with_fresh_lists() {
        let (cfg, _, botnets, campaigns) = setup(0.3);
        let botnet: Vec<_> = campaigns
            .iter()
            .filter(|c| matches!(c.delivery, DeliveryVector::Botnet(_)))
            .collect();
        assert!(!botnet.is_empty());
        for c in &botnet {
            assert_eq!(c.style, CampaignStyle::Loud);
            let DeliveryVector::Botnet(b) = c.delivery else {
                unreachable!()
            };
            // Monitored-generation botnets use fresh (zone-derived)
            // lists that cover the newly-registered mx3 portfolio.
            let expected = if botnets[b.index()].monitored {
                0b111
            } else {
                0b011
            };
            assert_eq!(c.brute_mask, expected);
        }
        let _ = cfg;
    }

    #[test]
    fn quiet_campaigns_dominate_count_loud_dominates_volume() {
        let (_, _, _, campaigns) = setup(0.3);
        let (mut quiet_n, mut loud_n, mut quiet_v, mut loud_v) = (0u64, 0u64, 0u64, 0u64);
        for c in &campaigns {
            match c.style {
                CampaignStyle::Quiet => {
                    quiet_n += 1;
                    quiet_v += c.volume;
                }
                CampaignStyle::Loud => {
                    loud_n += 1;
                    loud_v += c.volume;
                }
            }
        }
        assert!(quiet_n > loud_n, "quiet {quiet_n} loud {loud_n}");
        assert!(loud_v > quiet_v, "loud vol {loud_v} quiet vol {quiet_v}");
    }

    #[test]
    fn rx_affiliates_all_have_campaigns_at_full_scale() {
        let (cfg, roster, _, campaigns) = setup(1.0);
        let rx_with: std::collections::HashSet<_> = campaigns
            .iter()
            .filter(|c| c.program == crate::program::RX_PROGRAM)
            .map(|c| c.affiliate)
            .collect();
        assert_eq!(rx_with.len(), cfg.rx_affiliates);
        let _ = roster;
    }

    #[test]
    fn mix_sampling_respects_weights() {
        let mix = TargetingMix::from_config(&TargetMixConfig {
            brute: 1.0,
            harvested: 0.0,
            purchased: 0.0,
            social: 0.0,
        });
        let mut rng = RngStream::new(1, "mix");
        for _ in 0..50 {
            assert_eq!(mix.sample(0b1, &mut rng), TargetClass::BruteForce);
        }
        let mix = TargetingMix::from_config(&TargetMixConfig {
            brute: 0.0,
            harvested: 1.0,
            purchased: 0.0,
            social: 0.0,
        });
        for _ in 0..50 {
            match mix.sample(0b10100, &mut rng) {
                TargetClass::Harvested(v) => assert!(v == 2 || v == 4),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn pick_bit_covers_all_set_bits() {
        let mut rng = RngStream::new(2, "bits");
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(pick_bit(0b1011, &mut rng));
        }
        assert_eq!(seen, [0u8, 1, 3].into_iter().collect());
    }
}
