//! Affiliate programs and affiliates.
//!
//! Today's spammers operate primarily as *advertisers*: they work with
//! an affiliate program which handles web design, payment processing
//! and fulfilment, earning a 30–50 % commission (paper §4.2.3). The
//! Click Trajectories project identified 45 leading programs across
//! pharmaceuticals, replica goods and "OEM" software; one of them,
//! **RX-Promotion**, embeds an affiliate identifier in its storefront
//! pages, and a leaked document revealed each affiliate's 2010 annual
//! revenue — the basis of the paper's Figs 5 and 6.

use crate::config::EcosystemConfig;
use crate::ids::{AffiliateId, ProgramId, Vertical};
use rand::{Rng, RngExt};
use taster_stats::sample::LogNormal;

/// An affiliate program.
#[derive(Debug, Clone)]
pub struct AffiliateProgram {
    /// Program id; the roster guarantees `programs[i].id == i`.
    pub id: ProgramId,
    /// Synthesised program name.
    pub name: String,
    /// Goods vertical.
    pub vertical: Vertical,
    /// Whether the Click Trajectories signatures tag this program's
    /// storefronts (the 45 tagged programs) — untagged programs produce
    /// live-but-untagged domains.
    pub tagged: bool,
    /// Whether storefront pages embed the affiliate identifier
    /// (RX-Promotion only).
    pub embeds_affiliate_id: bool,
}

/// An affiliate (advertiser) of one program.
#[derive(Debug, Clone)]
pub struct Affiliate {
    /// Roster-wide affiliate id.
    pub id: AffiliateId,
    /// The program this affiliate advertises for.
    pub program: ProgramId,
    /// Synthetic 2010 annual revenue in USD (log-normal), standing in
    /// for the leaked RX-Promotion revenue document.
    pub annual_revenue_usd: f64,
}

/// The full program/affiliate roster.
#[derive(Debug, Clone)]
pub struct ProgramRoster {
    /// All programs; index == `ProgramId`.
    pub programs: Vec<AffiliateProgram>,
    /// All affiliates; index == `AffiliateId`.
    pub affiliates: Vec<Affiliate>,
    /// Affiliates of each program.
    by_program: Vec<Vec<AffiliateId>>,
}

/// Index of the RX-Promotion program in every roster.
pub const RX_PROGRAM: ProgramId = ProgramId(0);

impl ProgramRoster {
    /// Generates the roster described by `config`.
    pub fn generate<R: Rng>(config: &EcosystemConfig, rng: &mut R) -> ProgramRoster {
        let mut programs = Vec::new();
        let mut affiliates: Vec<Affiliate> = Vec::new();
        let mut by_program: Vec<Vec<AffiliateId>> = Vec::new();
        let revenue = LogNormal::new(config.revenue_mu, config.revenue_sigma);

        let add_program = |programs: &mut Vec<AffiliateProgram>,
                           by_program: &mut Vec<Vec<AffiliateId>>,
                           name: String,
                           vertical: Vertical,
                           tagged: bool,
                           embeds: bool| {
            let id = ProgramId(programs.len() as u16);
            programs.push(AffiliateProgram {
                id,
                name,
                vertical,
                tagged,
                embeds_affiliate_id: embeds,
            });
            by_program.push(Vec::new());
            id
        };

        // Tagged programs. Program 0 is RX-Promotion. Vertical split
        // loosely follows the Click Trajectories roster: mostly
        // pharma, then replica, then software.
        for i in 0..config.tagged_programs {
            let vertical = match i {
                0 => Vertical::Pharma,
                _ if i % 9 == 4 => Vertical::Software,
                _ if i % 3 == 1 => Vertical::Replica,
                _ => Vertical::Pharma,
            };
            let name = if i == 0 {
                "RX-Promotion".to_string()
            } else {
                format!("{}-partnerka-{:02}", vertical.label(), i)
            };
            add_program(&mut programs, &mut by_program, name, vertical, true, i == 0);
        }

        // Untagged programs.
        for i in 0..config.untagged_programs {
            let vertical = match i % 3 {
                0 => Vertical::Casino,
                1 => Vertical::Dating,
                _ => Vertical::Ebook,
            };
            let name = format!("{}-network-{:02}", vertical.label(), i);
            add_program(&mut programs, &mut by_program, name, vertical, false, false);
        }

        // Affiliates.
        for p in 0..programs.len() {
            let pid = ProgramId(p as u16);
            let n = if pid == RX_PROGRAM {
                config.rx_affiliates
            } else if programs[p].tagged {
                rng.random_range(config.tagged_affiliates.0..=config.tagged_affiliates.1)
            } else {
                rng.random_range(config.untagged_affiliates.0..=config.untagged_affiliates.1)
            };
            for _ in 0..n {
                let id = AffiliateId(affiliates.len() as u32);
                affiliates.push(Affiliate {
                    id,
                    program: pid,
                    annual_revenue_usd: revenue.sample(rng),
                });
                by_program[p].push(id);
            }
        }

        ProgramRoster {
            programs,
            affiliates,
            by_program,
        }
    }

    /// Program lookup.
    pub fn program(&self, id: ProgramId) -> &AffiliateProgram {
        &self.programs[id.index()]
    }

    /// Affiliate lookup.
    pub fn affiliate(&self, id: AffiliateId) -> &Affiliate {
        &self.affiliates[id.index()]
    }

    /// Affiliates of one program.
    pub fn affiliates_of(&self, id: ProgramId) -> &[AffiliateId] {
        &self.by_program[id.index()]
    }

    /// All tagged program ids.
    pub fn tagged_programs(&self) -> impl Iterator<Item = ProgramId> + '_ {
        self.programs.iter().filter(|p| p.tagged).map(|p| p.id)
    }

    /// Total revenue of RX-Promotion affiliates (the Fig 6 denominator).
    pub fn rx_total_revenue(&self) -> f64 {
        self.affiliates_of(RX_PROGRAM)
            .iter()
            .map(|&a| self.affiliate(a).annual_revenue_usd)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_sim::RngStream;

    fn roster() -> ProgramRoster {
        let mut rng = RngStream::new(1, "roster-test");
        ProgramRoster::generate(&EcosystemConfig::default(), &mut rng)
    }

    #[test]
    fn counts_match_config() {
        let r = roster();
        let cfg = EcosystemConfig::default();
        assert_eq!(
            r.programs.len(),
            cfg.tagged_programs + cfg.untagged_programs
        );
        assert_eq!(r.tagged_programs().count(), cfg.tagged_programs);
        assert_eq!(r.affiliates_of(RX_PROGRAM).len(), cfg.rx_affiliates);
    }

    #[test]
    fn rx_is_program_zero_and_embeds_ids() {
        let r = roster();
        let rx = r.program(RX_PROGRAM);
        assert_eq!(rx.name, "RX-Promotion");
        assert!(rx.tagged);
        assert!(rx.embeds_affiliate_id);
        assert!(r.programs.iter().filter(|p| p.embeds_affiliate_id).count() == 1);
    }

    #[test]
    fn ids_are_dense_and_consistent() {
        let r = roster();
        for (i, p) in r.programs.iter().enumerate() {
            assert_eq!(p.id.index(), i);
        }
        for (i, a) in r.affiliates.iter().enumerate() {
            assert_eq!(a.id.index(), i);
            assert!(r.affiliates_of(a.program).contains(&a.id));
        }
    }

    #[test]
    fn revenue_is_heavy_tailed() {
        let r = roster();
        let mut revs: Vec<f64> = r
            .affiliates_of(RX_PROGRAM)
            .iter()
            .map(|&a| r.affiliate(a).annual_revenue_usd)
            .collect();
        revs.sort_by(f64::total_cmp);
        let total: f64 = revs.iter().sum();
        let top10: f64 = revs.iter().rev().take(revs.len() / 10).sum();
        // Top decile must hold a disproportionate share of revenue.
        assert!(top10 / total > 0.35, "top10 share {}", top10 / total);
        assert!(r.rx_total_revenue() > 0.0);
    }

    #[test]
    fn untagged_programs_are_untagged_verticals() {
        let r = roster();
        for p in r.programs.iter().filter(|p| !p.tagged) {
            assert!(!p.vertical.is_tagged());
        }
    }
}
