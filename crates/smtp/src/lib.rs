//! # taster-smtp
//!
//! A minimal SMTP substrate (RFC 5321 subset) for the honeypot
//! collectors.
//!
//! The paper's MX honeypots are "an SMTP server that accepts all
//! inbound messages" (§3.2). To keep the collection pipeline honest,
//! this crate implements that server: a command parser, a server-side
//! session state machine with an accept-everything policy, and a
//! client that speaks the protocol to deliver a message. The MX
//! collectors in `taster-feeds` drive a real dialogue per captured
//! copy and take the message out of the server's store — a parsing or
//! state-machine bug would corrupt the feeds, not be silently papered
//! over.
//!
//! Scope: the commands a 2010 spam cannon actually used — `HELO`/
//! `EHLO`, `MAIL FROM`, `RCPT TO`, `DATA`, `RSET`, `NOOP`, `QUIT` —
//! with dot-stuffing, multi-recipient envelopes, and standard reply
//! codes. Deliberately omitted: extensions (`STARTTLS`, `AUTH`,
//! `SIZE` negotiation), since a quiescent-domain honeypot advertises
//! none of them.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod command;
pub mod reply;
pub mod server;

pub use client::deliver;
pub use command::Command;
pub use reply::Reply;
pub use server::{HoneypotServer, SessionState, StoredMessage};
