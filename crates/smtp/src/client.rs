//! The sending side: drives a honeypot session to deliver one message.
//!
//! Spam cannons speak minimal, sloppy SMTP; the client reproduces that
//! (HELO rather than EHLO most of the time, one transaction per
//! connection unless pipelining several copies). Delivery performs
//! dot-stuffing on the outgoing body.

use crate::reply::Reply;
use crate::server::{HoneypotServer, StoredMessage};

/// Error delivering through the state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliveryError {
    /// The command that was refused.
    pub at: String,
    /// The server's reply.
    pub reply: Reply,
}

impl std::fmt::Display for DeliveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server refused {:?}: {}", self.at, self.reply)
    }
}

impl std::error::Error for DeliveryError {}

/// Delivers one message into `server`, returning the stored copy.
///
/// `recipients` must be non-empty. The returned reference points into
/// the server's store.
pub fn deliver<'s>(
    server: &'s mut HoneypotServer,
    helo: &str,
    mail_from: &str,
    recipients: &[String],
    body: &str,
) -> Result<&'s StoredMessage, DeliveryError> {
    assert!(!recipients.is_empty(), "SMTP needs at least one recipient");
    let mut send = |line: String| -> Result<(), DeliveryError> {
        match server.handle_line(&line) {
            Some(reply) if reply.is_positive() => Ok(()),
            Some(reply) => Err(DeliveryError { at: line, reply }),
            None => Ok(()), // data content line
        }
    };

    send(format!("HELO {helo}"))?;
    let from = if mail_from.is_empty() {
        "<>".to_string()
    } else {
        format!("<{mail_from}>")
    };
    send(format!("MAIL FROM:{from}"))?;
    for r in recipients {
        send(format!("RCPT TO:<{r}>"))?;
    }
    send("DATA".to_string())?;
    for line in body.lines() {
        // Dot-stuff outgoing content (RFC 5321 §4.5.2).
        if let Some(rest) = line.strip_prefix('.') {
            send(format!("..{rest}"))?;
        } else {
            send(line.to_string())?;
        }
    }
    send(".".to_string())?;
    // The accepted final dot always stores the message; treat a
    // missing copy as the server having refused the transaction.
    server.stored().last().ok_or_else(|| DeliveryError {
        at: ".".to_string(),
        reply: Reply::bad_sequence(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_round_trips_the_body() {
        let (mut server, _) = HoneypotServer::connect("mx.trap.example");
        let body = "Subject: offer\n\nvisit http://pills.example/\n.hidden dot line\n";
        let stored = deliver(
            &mut server,
            "cannon.example",
            "blast@sender.example",
            &["victim@trap.example".to_string()],
            body,
        )
        .unwrap();
        assert_eq!(stored.data, body.trim_end_matches('\n'));
        assert_eq!(stored.mail_from, "blast@sender.example");
        assert_eq!(stored.helo, "cannon.example");
    }

    #[test]
    fn null_sender_and_many_recipients() {
        let (mut server, _) = HoneypotServer::connect("mx.trap.example");
        let rcpts: Vec<String> = (0..5).map(|i| format!("u{i}@trap.example")).collect();
        let stored = deliver(&mut server, "h", "", &rcpts, "hi").unwrap();
        assert_eq!(stored.mail_from, "");
        assert_eq!(stored.rcpt_to.len(), 5);
    }

    #[test]
    fn several_deliveries_share_a_session() {
        let (mut server, _) = HoneypotServer::connect("mx.trap.example");
        for i in 0..4 {
            deliver(
                &mut server,
                "h",
                "a@b.com",
                &[format!("v{i}@trap.example")],
                &format!("copy {i}"),
            )
            .unwrap();
        }
        assert_eq!(server.stored().len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one recipient")]
    fn zero_recipients_is_a_bug() {
        let (mut server, _) = HoneypotServer::connect("mx");
        let _ = deliver(&mut server, "h", "a@b.com", &[], "x");
    }
}
