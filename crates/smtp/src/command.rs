//! SMTP command parsing (client → server lines).

/// A parsed SMTP command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `HELO <domain>`
    Helo(String),
    /// `EHLO <domain>`
    Ehlo(String),
    /// `MAIL FROM:<reverse-path>`
    MailFrom(String),
    /// `RCPT TO:<forward-path>`
    RcptTo(String),
    /// `DATA`
    Data,
    /// `RSET`
    Rset,
    /// `NOOP`
    Noop,
    /// `QUIT`
    Quit,
}

/// Why a command line failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Empty line.
    Empty,
    /// Verb not recognised (maps to reply 500).
    UnknownVerb(String),
    /// Verb recognised but arguments malformed (maps to reply 501).
    BadArguments(&'static str),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Empty => write!(f, "empty command line"),
            ParseError::UnknownVerb(v) => write!(f, "unknown command {v:?}"),
            ParseError::BadArguments(what) => write!(f, "malformed arguments: {what}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl Command {
    /// Parses one command line (without the trailing CRLF). Verbs are
    /// case-insensitive, as required by RFC 5321 §2.4.
    pub fn parse(line: &str) -> Result<Command, ParseError> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.trim().is_empty() {
            return Err(ParseError::Empty);
        }
        let (verb, rest) = match line.find(' ') {
            Some(i) => (&line[..i], line[i + 1..].trim()),
            None => (line, ""),
        };
        match verb.to_ascii_uppercase().as_str() {
            "HELO" => {
                if rest.is_empty() {
                    Err(ParseError::BadArguments("HELO requires a domain"))
                } else {
                    Ok(Command::Helo(rest.to_string()))
                }
            }
            "EHLO" => {
                if rest.is_empty() {
                    Err(ParseError::BadArguments("EHLO requires a domain"))
                } else {
                    Ok(Command::Ehlo(rest.to_string()))
                }
            }
            "MAIL" => parse_path(rest, "FROM:").map(Command::MailFrom),
            "RCPT" => parse_path(rest, "TO:").map(Command::RcptTo),
            "DATA" => no_args(rest, Command::Data),
            "RSET" => no_args(rest, Command::Rset),
            "NOOP" => Ok(Command::Noop), // NOOP may carry ignored args
            "QUIT" => no_args(rest, Command::Quit),
            other => Err(ParseError::UnknownVerb(other.to_string())),
        }
    }
}

fn no_args(rest: &str, cmd: Command) -> Result<Command, ParseError> {
    if rest.is_empty() {
        Ok(cmd)
    } else {
        Err(ParseError::BadArguments("unexpected arguments"))
    }
}

/// Parses `FROM:<addr>` / `TO:<addr>` with the angle-bracket path
/// syntax. The null reverse-path `<>` is accepted for `MAIL`.
fn parse_path(rest: &str, keyword: &str) -> Result<String, ParseError> {
    let upper = rest.to_ascii_uppercase();
    if !upper.starts_with(keyword) {
        return Err(ParseError::BadArguments("missing FROM:/TO: keyword"));
    }
    let path = rest[keyword.len()..].trim();
    let inner = path
        .strip_prefix('<')
        .and_then(|p| p.strip_suffix('>'))
        .ok_or(ParseError::BadArguments("path must be <angle-bracketed>"))?;
    if inner.is_empty() {
        // Null reverse path (bounces); spam cannons use it too.
        return Ok(String::new());
    }
    if !inner.contains('@') || inner.contains(' ') {
        return Err(ParseError::BadArguments("path must be a mailbox"));
    }
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_core_verbs() {
        assert_eq!(
            Command::parse("HELO spam.example"),
            Ok(Command::Helo("spam.example".into()))
        );
        assert_eq!(
            Command::parse("ehlo relay.example"),
            Ok(Command::Ehlo("relay.example".into()))
        );
        assert_eq!(
            Command::parse("MAIL FROM:<a@b.com>"),
            Ok(Command::MailFrom("a@b.com".into()))
        );
        assert_eq!(
            Command::parse("rcpt to:<x@y.org>"),
            Ok(Command::RcptTo("x@y.org".into()))
        );
        assert_eq!(Command::parse("DATA"), Ok(Command::Data));
        assert_eq!(Command::parse("RSET"), Ok(Command::Rset));
        assert_eq!(Command::parse("QUIT\r\n"), Ok(Command::Quit));
        assert_eq!(Command::parse("NOOP ignored"), Ok(Command::Noop));
    }

    #[test]
    fn null_reverse_path() {
        assert_eq!(
            Command::parse("MAIL FROM:<>"),
            Ok(Command::MailFrom(String::new()))
        );
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(Command::parse(""), Err(ParseError::Empty)));
        assert!(matches!(
            Command::parse("HELO"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            Command::parse("MAIL FROM:a@b.com"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            Command::parse("RCPT TO:<no-at-sign>"),
            Err(ParseError::BadArguments(_))
        ));
        assert!(matches!(
            Command::parse("VRFY user"),
            Err(ParseError::UnknownVerb(_))
        ));
        assert!(matches!(
            Command::parse("DATA now"),
            Err(ParseError::BadArguments(_))
        ));
    }

    #[test]
    fn verbs_are_case_insensitive_paths_are_not() {
        assert_eq!(
            Command::parse("mail from:<MiXeD@Case.Com>"),
            Ok(Command::MailFrom("MiXeD@Case.Com".into()))
        );
    }
}
