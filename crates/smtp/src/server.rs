//! The accept-everything honeypot server.
//!
//! A session is a state machine over parsed [`Command`]s plus raw DATA
//! lines. The policy is the paper's: accept every `RCPT TO` for any
//! domain in the honeypot's portfolio (a quiescent domain's MX accepts
//! everything), store every message. Dot-stuffing is undone on
//! receipt (RFC 5321 §4.5.2).

use crate::command::{Command, ParseError};
use crate::reply::Reply;

/// Session protocol state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Connected; greeting sent, no HELO yet.
    Connected,
    /// HELO/EHLO done.
    Greeted,
    /// MAIL FROM accepted.
    MailGiven,
    /// At least one RCPT accepted.
    RcptGiven,
    /// Inside DATA; consuming message lines.
    ReceivingData,
    /// QUIT processed; no further commands accepted.
    Closed,
}

/// A message accepted by the honeypot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredMessage {
    /// HELO/EHLO argument the peer presented.
    pub helo: String,
    /// Envelope sender (may be empty: null reverse-path).
    pub mail_from: String,
    /// Envelope recipients.
    pub rcpt_to: Vec<String>,
    /// Message content (headers + body), dot-unstuffed, `\n` line
    /// endings.
    pub data: String,
}

/// One honeypot SMTP session.
#[derive(Debug)]
pub struct HoneypotServer {
    hostname: String,
    state: SessionState,
    helo: String,
    mail_from: Option<String>,
    rcpt_to: Vec<String>,
    data_lines: Vec<String>,
    stored: Vec<StoredMessage>,
}

impl HoneypotServer {
    /// Opens a session; returns the server and its 220 greeting.
    pub fn connect(hostname: impl Into<String>) -> (HoneypotServer, Reply) {
        let hostname = hostname.into();
        let greeting = Reply::service_ready(&hostname);
        (
            HoneypotServer {
                hostname,
                state: SessionState::Connected,
                helo: String::new(),
                mail_from: None,
                rcpt_to: Vec::new(),
                data_lines: Vec::new(),
                stored: Vec::new(),
            },
            greeting,
        )
    }

    /// Current protocol state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Messages accepted so far.
    pub fn stored(&self) -> &[StoredMessage] {
        &self.stored
    }

    /// Consumes the session, returning accepted messages.
    pub fn into_stored(self) -> Vec<StoredMessage> {
        self.stored
    }

    /// Drains accepted messages, leaving the session open — long-lived
    /// collectors call this after each transaction to keep memory
    /// flat.
    pub fn drain_stored(&mut self) -> Vec<StoredMessage> {
        std::mem::take(&mut self.stored)
    }

    /// Feeds one client line (command or DATA content) to the server
    /// and returns its reply, or `None` for DATA content lines (the
    /// server stays silent until the terminating dot).
    pub fn handle_line(&mut self, line: &str) -> Option<Reply> {
        if self.state == SessionState::ReceivingData {
            return self.handle_data_line(line);
        }
        let command = match Command::parse(line) {
            Ok(c) => c,
            Err(ParseError::UnknownVerb(_)) => return Some(Reply::unknown_command()),
            Err(_) => return Some(Reply::bad_arguments()),
        };
        Some(self.handle_command(command))
    }

    fn handle_command(&mut self, command: Command) -> Reply {
        use SessionState::*;
        if self.state == Closed {
            return Reply::bad_sequence();
        }
        match command {
            Command::Helo(d) | Command::Ehlo(d) => {
                self.helo = d;
                self.reset_envelope();
                self.state = Greeted;
                Reply::new(250, format!("{} greets you", self.hostname))
            }
            Command::MailFrom(path) => match self.state {
                Greeted | MailGiven | RcptGiven => {
                    self.reset_envelope();
                    self.mail_from = Some(path);
                    self.state = MailGiven;
                    Reply::ok()
                }
                _ => Reply::bad_sequence(),
            },
            Command::RcptTo(path) => match self.state {
                MailGiven | RcptGiven => {
                    // Accept-everything policy: a quiescent domain's MX
                    // rejects no recipient.
                    self.rcpt_to.push(path);
                    self.state = RcptGiven;
                    Reply::ok()
                }
                _ => Reply::bad_sequence(),
            },
            Command::Data => match self.state {
                RcptGiven => {
                    self.state = ReceivingData;
                    self.data_lines.clear();
                    Reply::start_mail_input()
                }
                _ => Reply::bad_sequence(),
            },
            Command::Rset => {
                self.reset_envelope();
                if self.state != Connected {
                    self.state = Greeted;
                }
                Reply::ok()
            }
            Command::Noop => Reply::ok(),
            Command::Quit => {
                self.state = Closed;
                Reply::closing()
            }
        }
    }

    fn handle_data_line(&mut self, line: &str) -> Option<Reply> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line == "." {
            let message = StoredMessage {
                helo: self.helo.clone(),
                mail_from: self.mail_from.clone().unwrap_or_default(),
                rcpt_to: std::mem::take(&mut self.rcpt_to),
                data: self.data_lines.join("\n"),
            };
            self.stored.push(message);
            self.data_lines.clear();
            self.mail_from = None;
            self.state = SessionState::Greeted;
            return Some(Reply::ok());
        }
        // Undo dot-stuffing (RFC 5321 §4.5.2).
        let content = line
            .strip_prefix('.')
            .filter(|_| line.starts_with(".."))
            .map_or_else(
                || {
                    if let Some(stripped) = line.strip_prefix('.') {
                        stripped.to_string()
                    } else {
                        line.to_string()
                    }
                },
                |s| format!(".{}", &s[1..]),
            );
        self.data_lines.push(content);
        None
    }

    fn reset_envelope(&mut self) {
        self.mail_from = None;
        self.rcpt_to.clear();
        self.data_lines.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(server: &mut HoneypotServer, line: &str) -> Reply {
        server.handle_line(line).expect("command line yields reply")
    }

    #[test]
    fn full_transaction_stores_message() {
        let (mut s, greeting) = HoneypotServer::connect("mx.quiet-domain.com");
        assert_eq!(greeting.code, 220);
        assert!(drive(&mut s, "HELO cannon.example").is_positive());
        assert!(drive(&mut s, "MAIL FROM:<sales9@offer.example>").is_positive());
        assert!(drive(&mut s, "RCPT TO:<bob@quiet-domain.com>").is_positive());
        assert!(drive(&mut s, "RCPT TO:<alice@quiet-domain.com>").is_positive());
        assert_eq!(drive(&mut s, "DATA").code, 354);
        assert_eq!(s.handle_line("Subject: hi"), None);
        assert_eq!(s.handle_line(""), None);
        assert_eq!(s.handle_line("buy http://pills.example.com/"), None);
        assert_eq!(drive(&mut s, ".").code, 250);
        assert_eq!(drive(&mut s, "QUIT").code, 221);

        let stored = s.into_stored();
        assert_eq!(stored.len(), 1);
        assert_eq!(stored[0].rcpt_to.len(), 2);
        assert_eq!(stored[0].mail_from, "sales9@offer.example");
        assert!(stored[0].data.contains("pills.example.com"));
    }

    #[test]
    fn multiple_messages_per_session() {
        let (mut s, _) = HoneypotServer::connect("mx.example");
        drive(&mut s, "EHLO relay");
        for i in 0..3 {
            drive(&mut s, &format!("MAIL FROM:<a{i}@b.com>"));
            drive(&mut s, "RCPT TO:<x@mx.example>");
            drive(&mut s, "DATA");
            s.handle_line(&format!("message {i}"));
            drive(&mut s, ".");
        }
        assert_eq!(s.stored().len(), 3);
        assert_eq!(s.stored()[2].data, "message 2");
    }

    #[test]
    fn sequence_errors() {
        let (mut s, _) = HoneypotServer::connect("mx.example");
        // RCPT before MAIL.
        assert_eq!(drive(&mut s, "HELO x").code, 250);
        assert_eq!(drive(&mut s, "RCPT TO:<a@b.com>").code, 503);
        // DATA before RCPT.
        assert_eq!(drive(&mut s, "MAIL FROM:<a@b.com>").code, 250);
        assert_eq!(drive(&mut s, "DATA").code, 503);
        // MAIL before HELO.
        let (mut fresh, _) = HoneypotServer::connect("mx.example");
        assert_eq!(drive(&mut fresh, "MAIL FROM:<a@b.com>").code, 503);
        // After QUIT.
        drive(&mut s, "QUIT");
        assert_eq!(drive(&mut s, "NOOP").code, 503);
    }

    #[test]
    fn rset_clears_envelope() {
        let (mut s, _) = HoneypotServer::connect("mx.example");
        drive(&mut s, "HELO x");
        drive(&mut s, "MAIL FROM:<a@b.com>");
        drive(&mut s, "RCPT TO:<c@d.com>");
        assert_eq!(drive(&mut s, "RSET").code, 250);
        assert_eq!(drive(&mut s, "DATA").code, 503, "envelope gone after RSET");
        assert_eq!(s.state(), SessionState::Greeted);
    }

    #[test]
    fn dot_stuffing_is_undone() {
        let (mut s, _) = HoneypotServer::connect("mx.example");
        drive(&mut s, "HELO x");
        drive(&mut s, "MAIL FROM:<a@b.com>");
        drive(&mut s, "RCPT TO:<c@mx.example>");
        drive(&mut s, "DATA");
        s.handle_line("..leading dot line");
        s.handle_line("normal");
        drive(&mut s, ".");
        assert_eq!(s.stored()[0].data, ".leading dot line\nnormal");
    }

    #[test]
    fn unknown_and_malformed_commands() {
        let (mut s, _) = HoneypotServer::connect("mx.example");
        assert_eq!(drive(&mut s, "VRFY whoever").code, 500);
        assert_eq!(drive(&mut s, "HELO").code, 501);
        assert_eq!(
            s.state(),
            SessionState::Connected,
            "errors do not advance state"
        );
    }
}
