//! SMTP replies (server → client lines).

/// A server reply: three-digit code plus text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Reply code (RFC 5321 §4.2).
    pub code: u16,
    /// Human-readable text.
    pub text: String,
}

impl Reply {
    /// Builds a reply.
    pub fn new(code: u16, text: impl Into<String>) -> Reply {
        Reply {
            code,
            text: text.into(),
        }
    }

    /// `220` service ready.
    pub fn service_ready(host: &str) -> Reply {
        Reply::new(220, format!("{host} ESMTP service ready"))
    }

    /// `250` OK.
    pub fn ok() -> Reply {
        Reply::new(250, "OK")
    }

    /// `354` start mail input.
    pub fn start_mail_input() -> Reply {
        Reply::new(354, "Start mail input; end with <CRLF>.<CRLF>")
    }

    /// `221` closing channel.
    pub fn closing() -> Reply {
        Reply::new(221, "Service closing transmission channel")
    }

    /// `500` unknown command.
    pub fn unknown_command() -> Reply {
        Reply::new(500, "Syntax error, command unrecognized")
    }

    /// `501` bad arguments.
    pub fn bad_arguments() -> Reply {
        Reply::new(501, "Syntax error in parameters or arguments")
    }

    /// `503` bad sequence.
    pub fn bad_sequence() -> Reply {
        Reply::new(503, "Bad sequence of commands")
    }

    /// Whether the reply is a 2xx/3xx success/intermediate.
    pub fn is_positive(&self) -> bool {
        (200..400).contains(&self.code)
    }

    /// Renders the wire form (single-line replies only).
    pub fn to_wire(&self) -> String {
        format!("{} {}\r\n", self.code, self.text)
    }

    /// Parses a single-line wire reply.
    pub fn parse(line: &str) -> Option<Reply> {
        let line = line.trim_end_matches(['\r', '\n']);
        if line.len() < 3 {
            return None;
        }
        let code: u16 = line[..3].parse().ok()?;
        if !(200..600).contains(&code) {
            return None;
        }
        let text = line[3..].trim_start_matches([' ', '-']).to_string();
        Some(Reply { code, text })
    }
}

impl std::fmt::Display for Reply {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.code, self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        for r in [
            Reply::service_ready("mx.example"),
            Reply::ok(),
            Reply::start_mail_input(),
            Reply::closing(),
            Reply::unknown_command(),
            Reply::bad_arguments(),
            Reply::bad_sequence(),
        ] {
            let parsed = Reply::parse(&r.to_wire()).unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn positivity() {
        assert!(Reply::ok().is_positive());
        assert!(Reply::start_mail_input().is_positive());
        assert!(!Reply::unknown_command().is_positive());
        assert!(!Reply::bad_sequence().is_positive());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(Reply::parse(""), None);
        assert_eq!(Reply::parse("99"), None);
        assert_eq!(Reply::parse("abc hello"), None);
        assert_eq!(Reply::parse("999 too big"), None);
    }
}
