//! Property tests: the honeypot state machine must be total — any
//! line sequence yields valid replies and never panics — and delivery
//! must round-trip arbitrary bodies.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use taster_smtp::{deliver, Command, HoneypotServer, SessionState};

/// Arbitrary client lines: a mix of valid commands, garbage, and data.
fn client_line() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("HELO sender.example".to_string()),
        Just("EHLO sender.example".to_string()),
        Just("MAIL FROM:<a@b.com>".to_string()),
        Just("MAIL FROM:<>".to_string()),
        Just("RCPT TO:<x@y.org>".to_string()),
        Just("DATA".to_string()),
        Just("RSET".to_string()),
        Just("NOOP".to_string()),
        Just("QUIT".to_string()),
        Just(".".to_string()),
        "[ -~]{0,40}".prop_map(|s| s),
    ]
}

proptest! {
    #[test]
    fn state_machine_is_total(lines in proptest::collection::vec(client_line(), 0..60)) {
        let (mut server, greeting) = HoneypotServer::connect("mx.example");
        prop_assert_eq!(greeting.code, 220);
        let mut closed = false;
        for line in &lines {
            let receiving = server.state() == SessionState::ReceivingData;
            match server.handle_line(line) {
                Some(reply) => {
                    prop_assert!((200..600).contains(&reply.code), "{reply:?}");
                    // After QUIT everything is an error (503 for
                    // well-formed commands, 5xx syntax errors for
                    // garbage — parsing precedes the state check).
                    if closed {
                        prop_assert!(reply.code >= 500, "{reply:?} after QUIT");
                    }
                    if reply.code == 221 {
                        closed = true;
                    }
                    // Wire form parses back.
                    let parsed = taster_smtp::Reply::parse(&reply.to_wire()).unwrap();
                    prop_assert_eq!(parsed.code, reply.code);
                }
                None => prop_assert!(receiving, "silence only during DATA"),
            }
        }
        // Every stored message has an intact envelope.
        for m in server.stored() {
            prop_assert!(!m.rcpt_to.is_empty());
        }
    }

    #[test]
    fn delivery_round_trips_any_printable_body(
        body_lines in proptest::collection::vec("[ -~]{0,60}", 0..20)
    ) {
        let body = body_lines.join("\n");
        let (mut server, _) = HoneypotServer::connect("mx.example");
        let stored = deliver(
            &mut server,
            "client.example",
            "s@e.com",
            &["r@mx.example".to_string()],
            &body,
        )
        .unwrap()
        .clone();
        // lines() normalisation: trailing empty lines collapse.
        let expected: Vec<&str> = body.lines().collect();
        let got: Vec<&str> = stored.data.lines().collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn command_parser_never_panics(line in "\\PC{0,80}") {
        let _ = Command::parse(&line);
    }
}
