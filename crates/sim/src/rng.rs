//! Named deterministic random streams.
//!
//! Every source of randomness in the toolkit is an [`RngStream`]
//! derived from `(master_seed, stream name)`. Streams are mutually
//! independent in practice (xoshiro256++ seeded via SplitMix64 over a
//! 64-bit hash of the name), and — crucially — *stable*: the draws a
//! stream produces depend only on its name and the master seed, never
//! on which other streams exist or the order they are created in.
//! Adding an eleventh feed collector therefore cannot perturb the
//! ground truth generated for the original ten.
//!
//! The generator implements `rand_core::TryRng` (infallibly), so all
//! of `rand`'s distributions and sequence adapters work on it.

use rand::TryRng;
use std::convert::Infallible;

/// xoshiro256++ seeded from a name + master seed.
///
/// xoshiro256++ is a small, fast, well-studied generator; we implement
/// it locally (≈20 lines) so stream contents are stable across `rand`
/// version bumps — an explicit reproducibility guarantee of this
/// toolkit.
#[derive(Debug, Clone)]
pub struct RngStream {
    s: [u64; 4],
}

/// Precomputed 64-bit key of a stream name (its FNV-1a hash), for hot
/// loops that derive one child stream per event from the same name:
/// hash the name once, then [`RngStream::child_keyed`] per event.
pub fn name_key(name: &str) -> u64 {
    fnv1a(name.as_bytes())
}

impl RngStream {
    /// Derives the stream named `name` from `master_seed`.
    pub fn new(master_seed: u64, name: &str) -> RngStream {
        RngStream::from_key(master_seed ^ fnv1a(name.as_bytes()))
    }

    /// SplitMix64 expansion of the 64-bit key into 256 bits of state.
    fn from_key(key: u64) -> RngStream {
        let mut x = key;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut x);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        RngStream { s }
    }

    /// Derives a numbered child stream, e.g. one per campaign.
    pub fn child(&self, master_seed: u64, name: &str, index: u64) -> RngStream {
        RngStream::new(
            master_seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407),
            name,
        )
    }

    /// [`Self::child`] with the name hash precomputed via [`name_key`].
    /// Bit-identical to `child(master_seed, name, index)` for
    /// `key == name_key(name)`; skips re-hashing the name per call.
    pub fn child_keyed(master_seed: u64, key: u64, index: u64) -> RngStream {
        RngStream::from_key(master_seed ^ index.wrapping_mul(0xA24B_AED4_963E_E407) ^ key)
    }

    /// [`Self::child_keyed`] with a second key folded in: the stream
    /// named by `(master_seed, key_a, key_b, index)`. `key_b` is mixed
    /// through a second odd multiplier so `(key_a, key_b)` and
    /// `(key_b, key_a)` name different streams. The replication layer
    /// keys bootstrap resampling on `(seed, metric, resample index)`
    /// this way, which is what makes CI bounds independent of worker
    /// count and resample evaluation order.
    pub fn child_keyed2(master_seed: u64, key_a: u64, key_b: u64, index: u64) -> RngStream {
        RngStream::from_key(
            master_seed
                ^ key_a
                ^ key_b.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ index.wrapping_mul(0xA24B_AED4_963E_E407),
        )
    }

    /// Fills `out` with the stream's next `out.len()` draws.
    /// Bit-identical to drawing `next_u64` that many times.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out {
            *slot = self.next();
        }
    }

    /// Returns the stream's next `n` draws as a vector. Bit-identical
    /// to drawing `next_u64` `n` times.
    pub fn next_n(&mut self, n: usize) -> Vec<u64> {
        let mut out = vec![0u64; n];
        self.fill_u64(&mut out);
        out
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = (s[0].wrapping_add(s[3])).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl TryRng for RngStream {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok((self.next() >> 32) as u32)
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.next())
    }

    #[inline]
    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dst.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
        Ok(())
    }
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, RngExt};

    #[test]
    fn same_name_same_stream() {
        let mut a = RngStream::new(1, "campaigns");
        let mut b = RngStream::new(1, "campaigns");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_differ() {
        let mut a = RngStream::new(1, "campaigns");
        let mut b = RngStream::new(1, "benign");
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::new(1, "x");
        let mut b = RngStream::new(2, "x");
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn works_with_rand_ext_methods() {
        let mut r = RngStream::new(7, "ext");
        for _ in 0..1000 {
            let v: u32 = r.random_range(0..10);
            assert!(v < 10);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
        let _ = r.random_bool(0.5);
    }

    #[test]
    fn fill_bytes_covers_remainders() {
        let mut r = RngStream::new(9, "bytes");
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn child_streams_are_distinct_and_stable() {
        let base = RngStream::new(3, "campaign");
        let mut c0 = base.child(3, "campaign", 0);
        let mut c1 = base.child(3, "campaign", 1);
        let mut c0b = base.child(3, "campaign", 0);
        assert_eq!(c0.next_u64(), c0b.next_u64());
        let same = (0..50).filter(|_| c0.next_u64() == c1.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn child_keyed_is_bit_identical_to_child() {
        let base = RngStream::new(41, "feeds/mx2");
        let key = super::name_key("feeds/mx2");
        for index in [0u64, 1, 7, 1 << 40, u64::MAX] {
            let mut a = base.child(41, "feeds/mx2", index);
            let mut b = RngStream::child_keyed(41, key, index);
            for _ in 0..64 {
                assert_eq!(a.next_u64(), b.next_u64(), "index {index}");
            }
        }
    }

    #[test]
    fn child_keyed2_is_stable_and_order_sensitive() {
        let (ka, kb) = (
            super::name_key("replicate/resample"),
            super::name_key("coverage/live/Hu"),
        );
        let mut a = RngStream::child_keyed2(11, ka, kb, 3);
        let mut b = RngStream::child_keyed2(11, ka, kb, 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Swapping the two keys, changing either key, the index, or the
        // master seed all land on different streams.
        let mut base = RngStream::child_keyed2(11, ka, kb, 3);
        for mut other in [
            RngStream::child_keyed2(11, kb, ka, 3),
            RngStream::child_keyed2(11, ka, super::name_key("coverage/live/Bot"), 3),
            RngStream::child_keyed2(11, ka, kb, 4),
            RngStream::child_keyed2(12, ka, kb, 3),
        ] {
            let same = (0..50)
                .filter(|_| base.next_u64() == other.next_u64())
                .count();
            assert!(same <= 1);
            base = RngStream::child_keyed2(11, ka, kb, 3);
        }
    }

    #[test]
    fn child_keyed2_with_zero_second_key_is_not_child_keyed() {
        // key_b participates through a multiplier, so key_b = 0 is the
        // plain child_keyed stream — document that equivalence.
        let ka = super::name_key("x");
        let mut a = RngStream::child_keyed2(5, ka, 0, 9);
        let mut b = RngStream::child_keyed(5, ka, 9);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fill_u64_matches_single_draws() {
        let mut single = RngStream::new(13, "bulk");
        let mut batched = RngStream::new(13, "bulk");
        let mut out = [0u64; 257];
        batched.fill_u64(&mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, single.next_u64(), "draw {i}");
        }
        // And the streams stay in lockstep afterwards.
        assert_eq!(batched.next_u64(), single.next_u64());
    }

    #[test]
    fn next_n_matches_single_draws() {
        let mut single = RngStream::new(99, "bulk-n");
        let mut batched = RngStream::new(99, "bulk-n");
        let draws = batched.next_n(31);
        assert_eq!(draws.len(), 31);
        for (i, &v) in draws.iter().enumerate() {
            assert_eq!(v, single.next_u64(), "draw {i}");
        }
        assert!(batched.next_n(0).is_empty());
        assert_eq!(batched.next_u64(), single.next_u64());
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        let mut r = RngStream::new(11, "uniformity");
        let mut buckets = [0usize; 16];
        let n = 64_000;
        for _ in 0..n {
            buckets[(r.next_u64() >> 60) as usize] += 1;
        }
        let expect = n / 16;
        for (i, &b) in buckets.iter().enumerate() {
            assert!(
                (b as f64 / expect as f64 - 1.0).abs() < 0.1,
                "bucket {i}: {b} vs {expect}"
            );
        }
    }
}
