//! Deterministic parallel execution over scoped threads.
//!
//! The toolkit's stages — feed collection, pairwise analyses, domain
//! crawling — are embarrassingly parallel: each task owns its derived
//! RNG stream and writes only its own output. This module fans such
//! tasks across a bounded worker pool built on [`std::thread::scope`]
//! (no external dependencies) while keeping output *bit-identical* to
//! a serial run:
//!
//! * results are returned in **input order**, regardless of which
//!   worker ran which task or in what order tasks finished;
//! * tasks receive no information about the worker count, so a
//!   correct caller (one whose tasks are pure functions of their
//!   input) produces the same output at any [`Parallelism`].
//!
//! Worker count resolution: explicit `--threads` CLI flag, then the
//! `TASTER_THREADS` environment variable, then
//! [`std::thread::available_parallelism`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "TASTER_THREADS";

/// Worker-count configuration for the parallel stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
}

impl Default for Parallelism {
    /// `TASTER_THREADS` if set and positive, else the machine's
    /// available cores.
    fn default() -> Parallelism {
        Parallelism::from_env().unwrap_or_else(Parallelism::available_cores)
    }
}

impl Parallelism {
    /// Exactly `workers` worker threads (clamped to at least one).
    pub fn fixed(workers: usize) -> Parallelism {
        Parallelism {
            workers: workers.max(1),
        }
    }

    /// Serial execution: a single worker on the calling thread.
    pub fn serial() -> Parallelism {
        Parallelism::fixed(1)
    }

    /// One worker per available core.
    pub fn available_cores() -> Parallelism {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Parallelism::fixed(cores)
    }

    /// Reads [`THREADS_ENV`]; `None` when unset, empty, zero, or
    /// unparseable.
    pub fn from_env() -> Option<Parallelism> {
        let raw = std::env::var(THREADS_ENV).ok()?;
        let n: usize = raw.trim().parse().ok()?;
        (n > 0).then(|| Parallelism::fixed(n))
    }

    /// The configured worker count (always ≥ 1).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// With one worker (or zero/one items) this runs inline on the
    /// calling thread; otherwise up to `workers` scoped threads pull
    /// tasks from a shared index. `f` must be a pure function of its
    /// item for output to be independent of the worker count — every
    /// caller in this workspace passes tasks that own derived RNG
    /// streams, which satisfies this.
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(T) -> U + Sync,
    {
        self.par_map_indexed(items, |_idx, item| f(item))
    }

    /// [`par_map`](Self::par_map) variant passing each task its input
    /// index, for callers that key derived RNG streams by position.
    pub fn par_map_indexed<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        let n = items.len();
        if self.workers == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // Each task slot holds Some(input) before the run and its
        // output after; a shared atomic cursor hands out the next
        // unclaimed index. Input order is preserved because task i's
        // result lands in slot i no matter which worker computes it.
        let tasks: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let slots: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let workers = self.workers.min(n);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    // The atomic cursor hands each index to exactly one
                    // worker, so the slot always still holds its input;
                    // skip defensively rather than panic if it does not.
                    let Some(item) = tasks[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .take()
                    else {
                        continue;
                    };
                    let out = f(i, item);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                });
            }
        });

        slots.into_iter().map(take_slot).collect()
    }

    /// Runs heterogeneous tasks concurrently, returning their results
    /// in declaration order. Convenience wrapper over
    /// [`par_map`](Self::par_map) for fan-outs like "run these ten
    /// collectors at once".
    pub fn par_run<U, F>(&self, tasks: Vec<F>) -> Vec<U>
    where
        U: Send,
        F: FnOnce() -> U + Send,
    {
        self.par_map(tasks, |task| task())
    }
}

/// Unwraps one completed result slot. `scope()` propagates worker
/// panics before `par_map` reaches this point, so an empty slot means
/// results were lost; returning a shortened vector would silently
/// corrupt the ordered merge, so this is the one place the pool
/// prefers a loud abort.
#[allow(clippy::expect_used)]
fn take_slot<U>(slot: Mutex<Option<U>>) -> U {
    slot.into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        // lint:allow(no-panic) -- scope() propagates worker panics; an empty slot means lost results and must abort rather than silently corrupt the ordered merge
        .expect("worker completed every claimed task")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        for workers in [1, 2, 3, 8, 33] {
            let par = Parallelism::fixed(workers);
            let out = par.par_map((0..100).collect(), |x: u64| x * x);
            assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn indexed_variant_sees_input_positions() {
        let par = Parallelism::fixed(4);
        let out = par.par_map_indexed(vec!["a", "b", "c"], |i, s| format!("{i}{s}"));
        assert_eq!(out, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_run_preserves_declaration_order() {
        let par = Parallelism::fixed(3);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..10usize)
            .map(|i| Box::new(move || i) as Box<dyn FnOnce() -> usize + Send>)
            .collect();
        let out = par.par_run(tasks);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn worker_count_is_invisible_to_tasks() {
        let serial = Parallelism::serial().par_map((0..500).collect(), collatz_len);
        for workers in [2, 4, 16] {
            let parallel = Parallelism::fixed(workers).par_map((0..500).collect(), collatz_len);
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let par = Parallelism::fixed(8);
        assert_eq!(par.par_map(Vec::<u32>::new(), |x| x), Vec::<u32>::new());
        assert_eq!(par.par_map(vec![7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn fixed_clamps_to_one() {
        assert_eq!(Parallelism::fixed(0).workers(), 1);
        assert!(Parallelism::available_cores().workers() >= 1);
    }

    fn collatz_len(mut n: u64) -> u32 {
        n += 1;
        let mut steps = 0;
        while n != 1 {
            n = if n.is_multiple_of(2) {
                n / 2
            } else {
                3 * n + 1
            };
            steps += 1;
        }
        steps
    }
}
