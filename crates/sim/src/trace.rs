//! Deterministic tracing: nested per-stage spans plus point events.
//!
//! A [`Tracer`] records a tree of [spans](Span) on the driver thread.
//! Each span carries a name, optional string attributes, an optional
//! simulated-time window, and a wall-clock duration. Worker threads
//! never open spans — parallel shards contribute only commutative
//! metrics — so span ids, nesting and order are a pure function of
//! `(scenario, seed)`.
//!
//! Two renderings exist:
//!
//! * [`Tracer::to_jsonl`] — the full log (one JSON object per line,
//!   spans and events interleaved in record order) **including**
//!   `wall_ns`. This is what `--trace <path>` writes; wall times make
//!   consecutive runs differ, by design.
//! * [`Tracer::deterministic_view`] — an indented span tree with
//!   attributes and sim-time windows but **no wall times**. This view
//!   is bit-identical at any worker count and is what determinism
//!   tests snapshot.

use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

use crate::time::TimeWindow;

/// One recorded trace entry: a completed span or a point event.
#[derive(Debug, Clone)]
enum Entry {
    Span {
        id: u64,
        parent: Option<u64>,
        depth: usize,
        name: String,
        attrs: Vec<(String, String)>,
        sim_window: Option<TimeWindow>,
        wall_nanos: u128,
        /// Position in the record stream at which the span *opened* —
        /// used to render the tree in execution order.
        opened_at: u64,
    },
    Event {
        parent: Option<u64>,
        name: String,
        attrs: Vec<(String, String)>,
        opened_at: u64,
    },
}

#[derive(Debug, Default)]
struct TracerInner {
    entries: Vec<Entry>,
    /// Stack of open span ids (driver thread only).
    stack: Vec<u64>,
    next_id: u64,
    next_seq: u64,
}

/// A deterministic span/event recorder. Disabled tracers
/// ([`Tracer::off`]) make every operation a no-op.
#[derive(Debug)]
pub struct Tracer {
    on: bool,
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op.
    pub fn off() -> Tracer {
        Tracer {
            on: false,
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// An enabled tracer.
    pub fn on() -> Tracer {
        Tracer {
            on: true,
            inner: Mutex::new(TracerInner::default()),
        }
    }

    /// Whether recording is enabled.
    pub fn is_on(&self) -> bool {
        self.on
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        // Spans only record on the driver thread; a poisoned lock can
        // only come from a panicking span guard mid-drop, and the span
        // tree is still structurally sound — recover it.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Opens a span named `name`, nested under the currently open span
    /// (if any). The span records on drop of the returned guard. Only
    /// call from the driver thread — nesting is tracked by a stack.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        if !self.on {
            return SpanGuard {
                tracer: self,
                state: None,
            };
        }
        let mut inner = self.lock();
        let id = inner.next_id;
        inner.next_id += 1;
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let parent = inner.stack.last().copied();
        let depth = inner.stack.len();
        inner.stack.push(id);
        SpanGuard {
            tracer: self,
            state: Some(SpanState {
                id,
                parent,
                depth,
                name: name.to_string(),
                attrs: Vec::new(),
                sim_window: None,
                started: Instant::now(),
                opened_at: seq,
            }),
        }
    }

    /// Records a point event under the currently open span.
    /// Attributes are `(key, value)` string pairs.
    pub fn event(&self, name: &str, attrs: &[(&str, &str)]) {
        if !self.on {
            return;
        }
        let mut inner = self.lock();
        let parent = inner.stack.last().copied();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.entries.push(Entry::Event {
            parent,
            name: name.to_string(),
            attrs: attrs
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            opened_at: seq,
        });
    }

    fn close_span(&self, state: SpanState) {
        let wall_nanos = state.started.elapsed().as_nanos();
        let mut inner = self.lock();
        debug_assert_eq!(
            inner.stack.last(),
            Some(&state.id),
            "span drop out of order"
        );
        inner.stack.retain(|&id| id != state.id);
        inner.entries.push(Entry::Span {
            id: state.id,
            parent: state.parent,
            depth: state.depth,
            name: state.name,
            attrs: state.attrs,
            sim_window: state.sim_window,
            wall_nanos,
            opened_at: state.opened_at,
        });
    }

    /// The full trace as JSON lines, in record-stream order, including
    /// wall-clock nanoseconds. Not deterministic across runs.
    pub fn to_jsonl(&self) -> String {
        let inner = self.lock();
        let mut ordered: Vec<&Entry> = inner.entries.iter().collect();
        ordered.sort_by_key(|e| match e {
            Entry::Span { opened_at, .. } | Entry::Event { opened_at, .. } => *opened_at,
        });
        let mut out = String::new();
        for entry in ordered {
            match entry {
                Entry::Span {
                    id,
                    parent,
                    name,
                    attrs,
                    sim_window,
                    wall_nanos,
                    ..
                } => {
                    let _ = write!(out, "{{\"kind\":\"span\",\"id\":{id},\"parent\":");
                    match parent {
                        Some(p) => {
                            let _ = write!(out, "{p}");
                        }
                        None => out.push_str("null"),
                    }
                    let _ = write!(out, ",\"name\":{}", json_string(name));
                    if let Some(w) = sim_window {
                        let _ = write!(out, ",\"sim_start\":{},\"sim_end\":{}", w.start.0, w.end.0);
                    }
                    write_attrs(&mut out, attrs);
                    let _ = writeln!(out, ",\"wall_ns\":{wall_nanos}}}");
                }
                Entry::Event {
                    parent,
                    name,
                    attrs,
                    ..
                } => {
                    out.push_str("{\"kind\":\"event\",\"parent\":");
                    match parent {
                        Some(p) => {
                            let _ = write!(out, "{p}");
                        }
                        None => out.push_str("null"),
                    }
                    let _ = write!(out, ",\"name\":{}", json_string(name));
                    write_attrs(&mut out, attrs);
                    out.push_str("}\n");
                }
            }
        }
        out
    }

    /// The deterministic view: the span/event tree in execution order,
    /// with attributes and sim windows but no wall times. Bit-identical
    /// at any worker count.
    pub fn deterministic_view(&self) -> String {
        let inner = self.lock();
        let mut ordered: Vec<&Entry> = inner.entries.iter().collect();
        ordered.sort_by_key(|e| match e {
            Entry::Span { opened_at, .. } | Entry::Event { opened_at, .. } => *opened_at,
        });
        // Events don't carry a depth; derive it from their parent span.
        let depth_of = |parent: Option<u64>| -> usize {
            match parent {
                None => 0,
                Some(pid) => inner
                    .entries
                    .iter()
                    .find_map(|e| match e {
                        Entry::Span { id, depth, .. } if *id == pid => Some(depth + 1),
                        _ => None,
                    })
                    .unwrap_or(0),
            }
        };
        let mut out = String::new();
        for entry in ordered {
            match entry {
                Entry::Span {
                    depth,
                    name,
                    attrs,
                    sim_window,
                    ..
                } => {
                    let _ = write!(out, "{:indent$}span {name}", "", indent = depth * 2);
                    if let Some(w) = sim_window {
                        let _ = write!(out, " sim=[{}..{}]", w.start.0, w.end.0);
                    }
                    for (k, v) in attrs {
                        let _ = write!(out, " {k}={v}");
                    }
                    out.push('\n');
                }
                Entry::Event {
                    parent,
                    name,
                    attrs,
                    ..
                } => {
                    let d = depth_of(*parent);
                    let _ = write!(out, "{:indent$}event {name}", "", indent = d * 2);
                    for (k, v) in attrs {
                        let _ = write!(out, " {k}={v}");
                    }
                    out.push('\n');
                }
            }
        }
        out
    }

    /// Completed spans as `(name, depth, wall_secs, self_secs)` in
    /// execution order. Self time is the span's wall time minus the
    /// wall time of its direct children.
    pub fn span_timings(&self) -> Vec<SpanTiming> {
        let inner = self.lock();
        let mut spans: Vec<(&Entry, u128)> = Vec::new();
        for entry in &inner.entries {
            if let Entry::Span { id, .. } = entry {
                let child_nanos: u128 = inner
                    .entries
                    .iter()
                    .filter_map(|e| match e {
                        Entry::Span {
                            parent: Some(p),
                            wall_nanos,
                            ..
                        } if p == id => Some(*wall_nanos),
                        _ => None,
                    })
                    .sum();
                spans.push((entry, child_nanos));
            }
        }
        spans.sort_by_key(|(e, _)| match e {
            Entry::Span { opened_at, .. } | Entry::Event { opened_at, .. } => *opened_at,
        });
        spans
            .into_iter()
            .filter_map(|(e, child_nanos)| match e {
                Entry::Span {
                    name,
                    depth,
                    wall_nanos,
                    ..
                } => Some(SpanTiming {
                    name: name.clone(),
                    depth: *depth,
                    wall_secs: *wall_nanos as f64 / 1e9,
                    self_secs: wall_nanos.saturating_sub(child_nanos) as f64 / 1e9,
                }),
                _ => None,
            })
            .collect()
    }
}

/// One completed span's timing, for the `taster profile` tree.
#[derive(Debug, Clone)]
pub struct SpanTiming {
    /// Span name.
    pub name: String,
    /// Nesting depth (0 = root).
    pub depth: usize,
    /// Total wall time in seconds.
    pub wall_secs: f64,
    /// Wall time minus direct children's wall time.
    pub self_secs: f64,
}

#[derive(Debug)]
struct SpanState {
    id: u64,
    parent: Option<u64>,
    depth: usize,
    name: String,
    attrs: Vec<(String, String)>,
    sim_window: Option<TimeWindow>,
    started: Instant,
    opened_at: u64,
}

/// RAII guard for an open span; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard<'t> {
    tracer: &'t Tracer,
    state: Option<SpanState>,
}

impl SpanGuard<'_> {
    /// Attaches a string attribute to the span.
    pub fn attr(&mut self, key: &str, value: &str) {
        if let Some(s) = self.state.as_mut() {
            s.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Attaches an integer attribute to the span.
    pub fn attr_u64(&mut self, key: &str, value: u64) {
        if let Some(s) = self.state.as_mut() {
            s.attrs.push((key.to_string(), value.to_string()));
        }
    }

    /// Records the simulated-time window this span covers.
    pub fn sim_window(&mut self, window: TimeWindow) {
        if let Some(s) = self.state.as_mut() {
            s.sim_window = Some(window);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            self.tracer.close_span(state);
        }
    }
}

fn write_attrs(out: &mut String, attrs: &[(String, String)]) {
    if attrs.is_empty() {
        return;
    }
    out.push_str(",\"attrs\":{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_string(k), json_string(v));
    }
    out.push('}');
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn spans_nest_and_render_in_execution_order() {
        let t = Tracer::on();
        {
            let mut outer = t.span("pipeline");
            outer.attr("scenario", "paper");
            {
                let mut inner = t.span("collect");
                inner.attr_u64("events", 42);
                inner.sim_window(TimeWindow {
                    start: SimTime(0),
                    end: SimTime(100),
                });
                t.event("gap", &[("feed", "Hu")]);
            }
            let _classify = t.span("classify");
        }
        let view = t.deterministic_view();
        let expected = [
            "span pipeline scenario=paper",
            "  span collect sim=[0..100] events=42",
            "    event gap feed=Hu",
            "  span classify",
            "",
        ]
        .join("\n");
        assert_eq!(view, expected);
    }

    #[test]
    fn deterministic_view_has_no_wall_times() {
        let t = Tracer::on();
        {
            let _s = t.span("stage");
        }
        let view = t.deterministic_view();
        assert!(!view.contains("wall"), "wall time leaked: {view}");
        assert!(
            t.to_jsonl().contains("\"wall_ns\":"),
            "jsonl keeps wall time"
        );
    }

    #[test]
    fn off_tracer_records_nothing() {
        let t = Tracer::off();
        {
            let mut s = t.span("x");
            s.attr("a", "b");
            t.event("e", &[]);
        }
        assert!(t.deterministic_view().is_empty());
        assert!(t.to_jsonl().is_empty());
        assert!(t.span_timings().is_empty());
    }

    #[test]
    fn jsonl_escapes_strings() {
        let t = Tracer::on();
        t.event("quote\"and\\slash", &[("k\n", "v\t")]);
        let line = t.to_jsonl();
        assert!(line.contains("quote\\\"and\\\\slash"));
        assert!(line.contains("\"k\\n\":\"v\\t\""));
    }

    #[test]
    fn self_time_excludes_children() {
        let t = Tracer::on();
        {
            let _outer = t.span("outer");
            {
                let _inner = t.span("inner");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        let timings = t.span_timings();
        assert_eq!(timings.len(), 2);
        let outer = timings
            .iter()
            .find(|s| s.name == "outer")
            .expect("outer span recorded");
        let inner = timings
            .iter()
            .find(|s| s.name == "inner")
            .expect("inner span recorded");
        assert!(outer.wall_secs >= inner.wall_secs);
        assert!(outer.self_secs <= outer.wall_secs - inner.wall_secs + 1e-9);
    }
}
