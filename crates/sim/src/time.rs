//! Simulation time.
//!
//! Time is measured in whole seconds since the scenario epoch (the
//! start of the measurement period — in the paper, 2010-08-01). The
//! default scenario spans 92 days, like the paper's August–October
//! window. Seconds-resolution is ample: the finest-grained analysis
//! (Fig 10) works in hours.

/// One minute in seconds.
pub const MINUTE: u64 = 60;
/// One hour in seconds.
pub const HOUR: u64 = 3600;
/// One day in seconds.
pub const DAY: u64 = 86_400;

/// An instant, in seconds since the scenario epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The scenario epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole days since epoch.
    pub fn from_days(days: u64) -> SimTime {
        SimTime(days * DAY)
    }

    /// Constructs from whole hours since epoch.
    pub fn from_hours(hours: u64) -> SimTime {
        SimTime(hours * HOUR)
    }

    /// Seconds since epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// Whole days since epoch (floor).
    pub fn day(self) -> u64 {
        self.0 / DAY
    }

    /// Fractional days since epoch.
    pub fn days_f64(self) -> f64 {
        self.0 as f64 / DAY as f64
    }

    /// Fractional hours since epoch.
    pub fn hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Second-of-day in `0..86_400`.
    pub fn second_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// Saturating addition of a duration in seconds.
    pub fn plus(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_add(secs))
    }

    /// Saturating subtraction of a duration in seconds.
    pub fn minus(self, secs: u64) -> SimTime {
        SimTime(self.0.saturating_sub(secs))
    }

    /// Absolute difference in seconds.
    pub fn abs_diff(self, other: SimTime) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Signed difference `self − other` in seconds.
    pub fn signed_diff(self, other: SimTime) -> i64 {
        self.0 as i64 - other.0 as i64
    }
}

impl std::fmt::Display for SimTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let d = self.day();
        let rem = self.second_of_day();
        write!(
            f,
            "d{:03} {:02}:{:02}:{:02}",
            d,
            rem / HOUR,
            (rem % HOUR) / MINUTE,
            rem % MINUTE
        )
    }
}

impl std::ops::Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        self.plus(rhs)
    }
}

/// A half-open time window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimeWindow {
    /// Inclusive start.
    pub start: SimTime,
    /// Exclusive end.
    pub end: SimTime,
}

impl TimeWindow {
    /// Constructs a window; panics when `end < start`.
    pub fn new(start: SimTime, end: SimTime) -> TimeWindow {
        assert!(end >= start, "window end before start");
        TimeWindow { start, end }
    }

    /// A window covering `days` whole days from the epoch.
    pub fn first_days(days: u64) -> TimeWindow {
        TimeWindow::new(SimTime::ZERO, SimTime::from_days(days))
    }

    /// Window length in seconds.
    pub fn len_secs(&self) -> u64 {
        self.end.0 - self.start.0
    }

    /// Window length in fractional days.
    pub fn len_days(&self) -> f64 {
        self.len_secs() as f64 / DAY as f64
    }

    /// Membership test (`start ≤ t < end`).
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Intersection with another window, `None` when disjoint.
    pub fn intersect(&self, other: &TimeWindow) -> Option<TimeWindow> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(TimeWindow { start, end })
        } else {
            None
        }
    }

    /// Iterates the whole day indices the window touches.
    pub fn days(&self) -> impl Iterator<Item = u64> {
        let first = self.start.day();
        let last = if self.end.0 == 0 {
            0
        } else {
            (self.end.0 - 1) / DAY + 1
        };
        first..last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let t = SimTime::from_days(2).plus(3 * HOUR + 5 * MINUTE + 7);
        assert_eq!(t.day(), 2);
        assert_eq!(t.second_of_day(), 3 * HOUR + 5 * MINUTE + 7);
        assert_eq!(format!("{t}"), "d002 03:05:07");
        assert_eq!(SimTime::from_hours(25).day(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100);
        let b = SimTime(40);
        assert_eq!(a.abs_diff(b), 60);
        assert_eq!(b.abs_diff(a), 60);
        assert_eq!(a.signed_diff(b), 60);
        assert_eq!(b.signed_diff(a), -60);
        assert_eq!(b.minus(100), SimTime::ZERO);
        assert_eq!(a + 10, SimTime(110));
    }

    #[test]
    fn window_membership() {
        let w = TimeWindow::first_days(3);
        assert!(w.contains(SimTime::ZERO));
        assert!(w.contains(SimTime(3 * DAY - 1)));
        assert!(!w.contains(SimTime(3 * DAY)));
        assert_eq!(w.len_days(), 3.0);
    }

    #[test]
    fn window_intersection() {
        let a = TimeWindow::new(SimTime(10), SimTime(20));
        let b = TimeWindow::new(SimTime(15), SimTime(30));
        let c = TimeWindow::new(SimTime(20), SimTime(25));
        assert_eq!(
            a.intersect(&b),
            Some(TimeWindow::new(SimTime(15), SimTime(20)))
        );
        assert_eq!(a.intersect(&c), None);
    }

    #[test]
    fn window_day_iteration() {
        let w = TimeWindow::new(SimTime(DAY / 2), SimTime(2 * DAY + 1));
        assert_eq!(w.days().collect::<Vec<_>>(), vec![0, 1, 2]);
        let empty = TimeWindow::new(SimTime::ZERO, SimTime::ZERO);
        assert_eq!(empty.days().count(), 0);
    }

    #[test]
    #[should_panic(expected = "window end before start")]
    fn window_rejects_inverted() {
        TimeWindow::new(SimTime(5), SimTime(4));
    }
}
