//! Deterministic fault injection.
//!
//! The real 2010 feeds behind *Taster's Choice* were collected by messy
//! infrastructure: collectors went down for hours, crawler visits timed
//! out, DNS lookups returned SERVFAIL, and blacklist snapshots arrived
//! late or truncated. This module models those failure modes as a
//! [`FaultProfile`] (what can go wrong, and how often) compiled into a
//! [`FaultPlan`] (the profile bound to a master seed).
//!
//! **Determinism contract.** Every fault decision is a pure function of
//! `(seed, stage, event index)`: the plan derives a fresh
//! [`RngStream`] child named `fault/<stage>` at the event index and
//! draws from it. Because no stream state is shared between events,
//! decisions are independent of sharding and iteration order — faulted
//! runs stay bit-identical at any worker count. And because the
//! `fault/…` stream names are disjoint from every collector stream,
//! an all-zero profile ([`FaultProfile::off`]) consumes no randomness
//! at all and leaves clean runs byte-identical.

use crate::rng::{name_key, RngStream};
use crate::time::{SimTime, TimeWindow};
use rand::RngExt;

/// Outage stage label matching every stage.
pub const ALL_STAGES: &str = "*";

/// A collector outage: the named stage records nothing inside `window`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outage {
    /// Stage label the outage applies to (a feed label such as `mx1`,
    /// or [`ALL_STAGES`] for a global blackout).
    pub stage: String,
    /// Half-open window during which the stage is down.
    pub window: TimeWindow,
}

/// What the fault layer decided to do with one collected record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordFault {
    /// Record passes through untouched.
    Deliver,
    /// Record is lost before the collector logs it.
    Drop,
    /// Record is logged twice (e.g. an at-least-once queue replay).
    Duplicate,
    /// Record arrives with its payload cut short.
    Truncate,
}

/// Declarative description of collection-infrastructure failures.
///
/// All probabilities are per-event and must lie in `[0, 1]`. The
/// default profile is [`FaultProfile::off`] — every rate zero, no
/// outages — under which the pipeline behaves exactly as if the fault
/// layer did not exist.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Profile name, echoed in reports and selectable on the CLI.
    pub name: String,
    /// Collector outage windows.
    pub outages: Vec<Outage>,
    /// Probability a captured record is dropped before logging.
    pub record_drop_prob: f64,
    /// Probability a captured record is logged twice.
    pub record_duplicate_prob: f64,
    /// Probability a captured record's payload is truncated.
    pub record_truncate_prob: f64,
    /// Probability a DNS lookup attempt returns SERVFAIL.
    pub dns_servfail_prob: f64,
    /// Probability an HTTP fetch attempt times out.
    pub http_timeout_prob: f64,
    /// Crawler retries after the first failed attempt.
    pub crawl_max_retries: u32,
    /// Base simulated-time backoff between crawl attempts (doubles
    /// per retry).
    pub crawl_backoff_secs: u64,
    /// Extra latency added to every blacklist listing time.
    pub snapshot_delay_secs: u64,
    /// Probability a blacklist snapshot entry is lost to truncation.
    pub snapshot_truncate_prob: f64,
    /// Serving-side: probability a `loadgen` client stalls mid-request
    /// (slow-loris) instead of completing it. Collection is untouched.
    pub serve_slow_client_prob: f64,
    /// Serving-side: extra back-to-back queries each `loadgen` client
    /// fires per connection (burst overload). Collection is untouched.
    pub serve_query_burst: u32,
    /// Serving-side: `loadgen` kills the daemon after this many sealed
    /// epochs (0 = never). Collection is untouched.
    pub serve_kill_epoch: u32,
}

impl FaultProfile {
    /// The no-fault profile: all rates zero, no outages.
    pub fn off() -> FaultProfile {
        FaultProfile {
            name: "off".to_string(),
            outages: Vec::new(),
            record_drop_prob: 0.0,
            record_duplicate_prob: 0.0,
            record_truncate_prob: 0.0,
            dns_servfail_prob: 0.0,
            http_timeout_prob: 0.0,
            crawl_max_retries: 2,
            crawl_backoff_secs: 30,
            snapshot_delay_secs: 0,
            snapshot_truncate_prob: 0.0,
            serve_slow_client_prob: 0.0,
            serve_query_burst: 0,
            serve_kill_epoch: 0,
        }
    }

    /// A named alias of [`FaultProfile::off`] used as the sweep baseline.
    pub fn clean() -> FaultProfile {
        FaultProfile {
            name: "clean".to_string(),
            ..FaultProfile::off()
        }
    }

    /// Transient crawler trouble: SERVFAILs and HTTP timeouts with
    /// bounded retries, the collectors themselves healthy.
    pub fn flaky_crawler() -> FaultProfile {
        FaultProfile {
            name: "flaky-crawler".to_string(),
            dns_servfail_prob: 0.08,
            http_timeout_prob: 0.15,
            crawl_max_retries: 2,
            crawl_backoff_secs: 30,
            ..FaultProfile::off()
        }
    }

    /// Multi-day collector outages on three feeds (one honeypot, the
    /// human-identified feed, the botnet monitor).
    pub fn feed_outage() -> FaultProfile {
        FaultProfile {
            name: "feed-outage".to_string(),
            outages: vec![
                Outage {
                    stage: "mx2".to_string(),
                    window: TimeWindow::new(SimTime::from_days(10), SimTime::from_days(20)),
                },
                Outage {
                    stage: "Hu".to_string(),
                    window: TimeWindow::new(SimTime::from_days(40), SimTime::from_days(45)),
                },
                Outage {
                    stage: "Bot".to_string(),
                    window: TimeWindow::new(SimTime::from_days(60), SimTime::from_days(75)),
                },
            ],
            ..FaultProfile::off()
        }
    }

    /// Lossy record handling: drops, duplicates and truncation on every
    /// content collector.
    pub fn lossy_feeds() -> FaultProfile {
        FaultProfile {
            name: "lossy-feeds".to_string(),
            record_drop_prob: 0.10,
            record_duplicate_prob: 0.03,
            record_truncate_prob: 0.05,
            ..FaultProfile::off()
        }
    }

    /// Blacklist snapshots arrive two days late and 20% truncated.
    pub fn delayed_blacklists() -> FaultProfile {
        FaultProfile {
            name: "delayed-blacklists".to_string(),
            snapshot_delay_secs: 2 * crate::time::DAY,
            snapshot_truncate_prob: 0.20,
            ..FaultProfile::off()
        }
    }

    /// Every collector down for the whole measurement period — the
    /// empty-feed stress profile. The pipeline must complete without
    /// panicking and emit an annotated (degenerate) report.
    pub fn blackout() -> FaultProfile {
        FaultProfile {
            name: "blackout".to_string(),
            outages: vec![Outage {
                stage: ALL_STAGES.to_string(),
                window: TimeWindow::new(SimTime::ZERO, SimTime(u64::MAX)),
            }],
            ..FaultProfile::off()
        }
    }

    /// One third of serving clients stall mid-request (slow-loris).
    /// The daemon must time each of them out with a typed error while
    /// the well-behaved clients keep getting answers.
    pub fn slow_client() -> FaultProfile {
        FaultProfile {
            name: "slow-client".to_string(),
            serve_slow_client_prob: 0.35,
            ..FaultProfile::off()
        }
    }

    /// Bursty query overload: every client fires a back-to-back burst,
    /// pushing the daemon into admission control and load shedding.
    pub fn query_storm() -> FaultProfile {
        FaultProfile {
            name: "query-storm".to_string(),
            serve_query_burst: 64,
            ..FaultProfile::off()
        }
    }

    /// The daemon is killed (no drain) after two sealed epochs; a
    /// `serve --resume` must replay the tail and end byte-identical.
    pub fn kill_midrun() -> FaultProfile {
        FaultProfile {
            name: "kill-midrun".to_string(),
            serve_kill_epoch: 2,
            ..FaultProfile::off()
        }
    }

    /// Names of the canonical profiles, in sweep order. The last three
    /// are serving-side: they leave collection untouched (their
    /// degradation rows are all-zero deltas by design) and instead
    /// drive `taster serve` / `taster loadgen` behaviour.
    pub const CANONICAL: [&'static str; 9] = [
        "clean",
        "flaky-crawler",
        "feed-outage",
        "lossy-feeds",
        "delayed-blacklists",
        "blackout",
        "slow-client",
        "query-storm",
        "kill-midrun",
    ];

    /// Looks a canonical profile up by name (`off` is also accepted).
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "off" => Some(FaultProfile::off()),
            "clean" => Some(FaultProfile::clean()),
            "flaky-crawler" => Some(FaultProfile::flaky_crawler()),
            "feed-outage" => Some(FaultProfile::feed_outage()),
            "lossy-feeds" => Some(FaultProfile::lossy_feeds()),
            "delayed-blacklists" => Some(FaultProfile::delayed_blacklists()),
            "blackout" => Some(FaultProfile::blackout()),
            "slow-client" => Some(FaultProfile::slow_client()),
            "query-storm" => Some(FaultProfile::query_storm()),
            "kill-midrun" => Some(FaultProfile::kill_midrun()),
            _ => None,
        }
    }

    /// All canonical profiles, in sweep order ([`clean`] first).
    ///
    /// [`clean`]: FaultProfile::clean
    pub fn canonical() -> Vec<FaultProfile> {
        Self::CANONICAL
            .iter()
            .filter_map(|name| FaultProfile::by_name(name))
            .collect()
    }

    /// True when the profile introduces no faults at all.
    pub fn is_off(&self) -> bool {
        self.outages.is_empty()
            && self.record_drop_prob == 0.0
            && self.record_duplicate_prob == 0.0
            && self.record_truncate_prob == 0.0
            && self.dns_servfail_prob == 0.0
            && self.http_timeout_prob == 0.0
            && self.snapshot_delay_secs == 0
            && self.snapshot_truncate_prob == 0.0
            && self.serve_slow_client_prob == 0.0
            && self.serve_query_burst == 0
            && self.serve_kill_epoch == 0
    }

    /// True when the profile only exercises the serving path: no
    /// collection-side fault can fire, so collected feeds are
    /// byte-identical to a clean run even though the profile is "on".
    pub fn is_serve_only(&self) -> bool {
        !self.is_off()
            && self.outages.is_empty()
            && self.record_drop_prob == 0.0
            && self.record_duplicate_prob == 0.0
            && self.record_truncate_prob == 0.0
            && self.dns_servfail_prob == 0.0
            && self.http_timeout_prob == 0.0
            && self.snapshot_delay_secs == 0
            && self.snapshot_truncate_prob == 0.0
    }

    /// Validates rate ranges; returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("record_drop_prob", self.record_drop_prob),
            ("record_duplicate_prob", self.record_duplicate_prob),
            ("record_truncate_prob", self.record_truncate_prob),
            ("dns_servfail_prob", self.dns_servfail_prob),
            ("http_timeout_prob", self.http_timeout_prob),
            ("snapshot_truncate_prob", self.snapshot_truncate_prob),
            ("serve_slow_client_prob", self.serve_slow_client_prob),
        ];
        for (label, rate) in rates {
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("{label} must lie in [0, 1], got {rate}"));
            }
        }
        let record_total =
            self.record_drop_prob + self.record_duplicate_prob + self.record_truncate_prob;
        if record_total > 1.0 {
            return Err(format!(
                "record fault probabilities sum to {record_total} > 1"
            ));
        }
        Ok(())
    }
}

impl Default for FaultProfile {
    fn default() -> FaultProfile {
        FaultProfile::off()
    }
}

/// A [`FaultProfile`] bound to a master seed: the object collectors and
/// the crawler consult for every fault decision.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    profile: FaultProfile,
    seed: u64,
}

impl FaultPlan {
    /// Binds `profile` to `seed`.
    pub fn new(profile: FaultProfile, seed: u64) -> FaultPlan {
        FaultPlan { profile, seed }
    }

    /// The no-fault plan for `seed`.
    pub fn off(seed: u64) -> FaultPlan {
        FaultPlan::new(FaultProfile::off(), seed)
    }

    /// The profile this plan was built from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// The master seed fault decisions are keyed by.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when no decision this plan makes can introduce a fault.
    pub fn is_off(&self) -> bool {
        self.profile.is_off()
    }

    /// Precomputed key for `stage`'s decision stream
    /// (`name_key("fault/<stage>")`): hash the name once, then pass the
    /// key to [`Self::record_fault_keyed`] per event instead of paying
    /// a `format!` + name hash per decision.
    pub fn fault_key(stage: &str) -> u64 {
        name_key(&format!("fault/{stage}"))
    }

    /// The decision stream for `(seed, stage, index)`.
    ///
    /// Deriving a fresh child per event index is what makes every
    /// decision independent of sharding: no draw consumed for one event
    /// can perturb another event's stream.
    pub fn stream(&self, stage: &str, index: u64) -> RngStream {
        // `child` ignores the parent's state, so deriving through the
        // precomputed key is bit-identical to
        // `RngStream::new(seed, name).child(seed, name, index)`.
        RngStream::child_keyed(self.seed, Self::fault_key(stage), index)
    }

    /// [`Self::stream`] with the stage key precomputed via
    /// [`Self::fault_key`] — bit-identical for `key ==
    /// fault_key(stage)`. The crawler derives one decision stream per
    /// domain per stage; hashing the stage name once instead of per
    /// domain keeps the faulted crawl allocation-free.
    pub fn stream_keyed(&self, key: u64, index: u64) -> RngStream {
        RngStream::child_keyed(self.seed, key, index)
    }

    /// True when this plan can ever return a non-Deliver record
    /// decision. Hot loops hoist this check out of the per-event path:
    /// outage-only profiles (and the off plan) then skip the stream
    /// derivation entirely instead of early-returning per record.
    pub fn record_faults_possible(&self) -> bool {
        let p = &self.profile;
        p.record_drop_prob + p.record_duplicate_prob + p.record_truncate_prob > 0.0
    }

    /// True when `stage` is inside an outage window at `t`.
    pub fn outage_at(&self, stage: &str, t: SimTime) -> bool {
        self.profile
            .outages
            .iter()
            .any(|o| (o.stage == stage || o.stage == ALL_STAGES) && o.window.contains(t))
    }

    /// The outage windows that apply to `stage` (gap markers).
    pub fn outage_windows(&self, stage: &str) -> Vec<TimeWindow> {
        self.profile
            .outages
            .iter()
            .filter(|o| o.stage == stage || o.stage == ALL_STAGES)
            .map(|o| o.window)
            .collect()
    }

    /// Fault decision for record `index` of `stage`.
    pub fn record_fault(&self, stage: &str, index: u64) -> RecordFault {
        if !self.record_faults_possible() {
            return RecordFault::Deliver;
        }
        self.record_fault_keyed(Self::fault_key(stage), index)
    }

    /// [`Self::record_fault`] with the stage key precomputed via
    /// [`Self::fault_key`]. Bit-identical for `key == fault_key(stage)`.
    /// Callers on the hot path gate on [`Self::record_faults_possible`]
    /// themselves, so this derives the stream unconditionally.
    pub fn record_fault_keyed(&self, key: u64, index: u64) -> RecordFault {
        let p = &self.profile;
        let total = p.record_drop_prob + p.record_duplicate_prob + p.record_truncate_prob;
        let mut rng = RngStream::child_keyed(self.seed, key, index);
        let x: f64 = rng.random();
        if x < p.record_drop_prob {
            RecordFault::Drop
        } else if x < p.record_drop_prob + p.record_duplicate_prob {
            RecordFault::Duplicate
        } else if x < total {
            RecordFault::Truncate
        } else {
            RecordFault::Deliver
        }
    }

    /// True when blacklist `stage` loses snapshot entry `index` to
    /// truncation.
    pub fn snapshot_dropped(&self, stage: &str, index: u64) -> bool {
        let p = self.profile.snapshot_truncate_prob;
        if p <= 0.0 {
            return false;
        }
        let mut rng = self.stream(&format!("snapshot/{stage}"), index);
        rng.random_bool(p)
    }
}

/// Truncates `payload` to its first half, respecting UTF-8 boundaries.
///
/// This is the canonical "record arrived cut short" transformation
/// applied when [`FaultPlan::record_fault`] returns
/// [`RecordFault::Truncate`].
pub fn truncate_payload(payload: &str) -> &str {
    let mut cut = payload.len() / 2;
    while cut > 0 && !payload.is_char_boundary(cut) {
        cut -= 1;
    }
    &payload[..cut]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::DAY;

    #[test]
    fn off_profile_is_off() {
        assert!(FaultProfile::off().is_off());
        assert!(FaultProfile::clean().is_off());
        assert!(FaultPlan::off(7).is_off());
        assert!(!FaultProfile::flaky_crawler().is_off());
        assert!(!FaultProfile::blackout().is_off());
    }

    #[test]
    fn canonical_profiles_resolve_and_validate() {
        let all = FaultProfile::canonical();
        assert_eq!(all.len(), FaultProfile::CANONICAL.len());
        for profile in &all {
            profile.validate().unwrap();
            assert_eq!(FaultProfile::by_name(&profile.name).as_ref(), Some(profile));
        }
        assert!(FaultProfile::by_name("nope").is_none());
    }

    #[test]
    fn serving_profiles_are_on_but_collection_silent() {
        for profile in [
            FaultProfile::slow_client(),
            FaultProfile::query_storm(),
            FaultProfile::kill_midrun(),
        ] {
            assert!(!profile.is_off(), "{} must count as faulted", profile.name);
            assert!(profile.is_serve_only(), "{}", profile.name);
            profile.validate().unwrap();
            let plan = FaultPlan::new(profile.clone(), 5);
            // No collection-side decision can fire.
            assert!(!plan.record_faults_possible());
            assert!(plan.outage_windows(ALL_STAGES).is_empty());
            assert!(!plan.snapshot_dropped("dbl", 0));
        }
        assert!(!FaultProfile::off().is_serve_only());
        assert!(!FaultProfile::lossy_feeds().is_serve_only());
    }

    #[test]
    fn validation_rejects_bad_rates() {
        let mut p = FaultProfile::off();
        p.record_drop_prob = 1.5;
        assert!(p.validate().is_err());
        let mut p = FaultProfile::off();
        p.record_drop_prob = 0.6;
        p.record_truncate_prob = 0.6;
        assert!(p.validate().is_err());
        let mut p = FaultProfile::off();
        p.dns_servfail_prob = -0.1;
        assert!(p.validate().is_err());
    }

    #[test]
    fn record_faults_are_pure_in_seed_stage_index() {
        let plan = FaultPlan::new(FaultProfile::lossy_feeds(), 99);
        for i in 0..512 {
            assert_eq!(plan.record_fault("mx1", i), plan.record_fault("mx1", i));
        }
        // Stage and seed both perturb decisions.
        let other_seed = FaultPlan::new(FaultProfile::lossy_feeds(), 100);
        let differs_by_stage = (0..512)
            .filter(|&i| plan.record_fault("mx1", i) != plan.record_fault("mx2", i))
            .count();
        let differs_by_seed = (0..512)
            .filter(|&i| plan.record_fault("mx1", i) != other_seed.record_fault("mx1", i))
            .count();
        assert!(differs_by_stage > 0);
        assert!(differs_by_seed > 0);
    }

    #[test]
    fn keyed_record_fault_matches_named() {
        let plan = FaultPlan::new(FaultProfile::lossy_feeds(), 77);
        let key = FaultPlan::fault_key("mx3");
        for i in 0..512 {
            assert_eq!(plan.record_fault("mx3", i), plan.record_fault_keyed(key, i));
        }
        assert!(plan.record_faults_possible());
        // Outage-only profiles can never fault a record: hot loops may
        // skip the per-event decision entirely.
        assert!(!FaultPlan::new(FaultProfile::feed_outage(), 77).record_faults_possible());
        assert!(!FaultPlan::off(77).record_faults_possible());
    }

    #[test]
    fn off_plan_never_faults() {
        let plan = FaultPlan::off(3);
        for i in 0..64 {
            assert_eq!(plan.record_fault("mx1", i), RecordFault::Deliver);
            assert!(!plan.snapshot_dropped("dbl", i));
            assert!(!plan.outage_at("mx1", SimTime(i * DAY)));
        }
    }

    #[test]
    fn outage_windows_respect_stage_and_wildcard() {
        let plan = FaultPlan::new(FaultProfile::feed_outage(), 1);
        assert!(plan.outage_at("mx2", SimTime::from_days(15)));
        assert!(!plan.outage_at("mx2", SimTime::from_days(25)));
        assert!(!plan.outage_at("mx1", SimTime::from_days(15)));
        assert_eq!(plan.outage_windows("mx2").len(), 1);
        assert_eq!(plan.outage_windows("mx1").len(), 0);

        let blackout = FaultPlan::new(FaultProfile::blackout(), 1);
        assert!(blackout.outage_at("mx1", SimTime::from_days(91)));
        assert!(blackout.outage_at("uribl", SimTime::ZERO));
        assert_eq!(blackout.outage_windows("Hyb").len(), 1);
    }

    #[test]
    fn lossy_profile_produces_every_fault_kind() {
        let plan = FaultPlan::new(FaultProfile::lossy_feeds(), 42);
        let mut seen = [false; 4];
        for i in 0..4096 {
            let slot = match plan.record_fault("bot", i) {
                RecordFault::Deliver => 0,
                RecordFault::Drop => 1,
                RecordFault::Duplicate => 2,
                RecordFault::Truncate => 3,
            };
            seen[slot] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn truncate_payload_halves_on_char_boundary() {
        assert_eq!(truncate_payload("abcdef"), "abc");
        assert_eq!(truncate_payload(""), "");
        // 'é' is two bytes; the cut must back off to a boundary.
        let s = "aéé";
        let cut = truncate_payload(s);
        assert!(s.starts_with(cut));
        assert!(cut.len() <= s.len() / 2);
    }
}
