//! The observability handle threaded through the pipeline.
//!
//! [`Obs`] bundles a [`MetricsRegistry`] and a [`Tracer`] so every
//! instrumentation seam takes exactly one `&Obs` parameter.
//! [`Obs::off`] disables both — the default for every pre-existing
//! entry point, which is what keeps unobserved report bytes identical
//! to the uninstrumented binary.

use crate::metrics::MetricsRegistry;
use crate::trace::{SpanGuard, Tracer};

/// Metrics + tracing for one observed run.
#[derive(Debug)]
pub struct Obs {
    /// Counter/histogram sink (deterministic render).
    pub metrics: MetricsRegistry,
    /// Span/event recorder (deterministic view + JSONL).
    pub trace: Tracer,
}

impl Obs {
    /// Both subsystems disabled; all instrumentation is a no-op.
    pub fn off() -> Obs {
        Obs {
            metrics: MetricsRegistry::off(),
            trace: Tracer::off(),
        }
    }

    /// Both subsystems enabled.
    pub fn on() -> Obs {
        Obs {
            metrics: MetricsRegistry::on(),
            trace: Tracer::on(),
        }
    }

    /// Enables each subsystem independently (`--metrics` without
    /// `--trace` and vice versa).
    pub fn with(metrics: bool, trace: bool) -> Obs {
        Obs {
            metrics: if metrics {
                MetricsRegistry::on()
            } else {
                MetricsRegistry::off()
            },
            trace: if trace { Tracer::on() } else { Tracer::off() },
        }
    }

    /// True when either subsystem records anything.
    pub fn is_on(&self) -> bool {
        self.metrics.is_on() || self.trace.is_on()
    }

    /// Opens a trace span (no-op guard when tracing is off).
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        self.trace.span(name)
    }

    /// Runs `f` under a span named `stage` and records its wall time
    /// into the metrics registry's timing map (best-of across repeats).
    /// This is the single clock for the profile tree and
    /// `BENCH_pipeline.json`, so the two can never disagree.
    pub fn stage<T>(&self, stage: &str, f: impl FnOnce() -> T) -> T {
        let _span = self.trace.span(stage);
        self.metrics.time_stage(stage, f)
    }
}

impl Default for Obs {
    fn default() -> Obs {
        Obs::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_records_timing_and_span() {
        let obs = Obs::on();
        let v = obs.stage("collect", || 7);
        assert_eq!(v, 7);
        assert!(obs.metrics.timing("collect").is_some());
        assert!(obs.trace.deterministic_view().contains("span collect"));
    }

    #[test]
    fn off_is_fully_silent() {
        let obs = Obs::off();
        let v = obs.stage("collect", || 7);
        assert_eq!(v, 7);
        assert!(!obs.is_on());
        assert!(obs.metrics.render().is_empty());
        assert!(obs.trace.deterministic_view().is_empty());
    }

    #[test]
    fn with_enables_independently() {
        let m = Obs::with(true, false);
        assert!(m.metrics.is_on() && !m.trace.is_on() && m.is_on());
        let t = Obs::with(false, true);
        assert!(!t.metrics.is_on() && t.trace.is_on() && t.is_on());
    }
}
