//! A deterministic event queue.
//!
//! A thin wrapper around `BinaryHeap` that orders events by
//! `(time, insertion sequence)`: events scheduled for the same instant
//! pop in insertion order, which keeps multi-source simulations
//! reproducible without requiring `Ord` on the payload.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A time-ordered, insertion-stable queue of events of type `E`.
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drains all events in order, consuming the queue.
    pub fn into_ordered_vec(mut self) -> Vec<(SimTime, E)> {
        let mut v = Vec::with_capacity(self.len());
        while let Some(item) = self.pop() {
            v.push(item);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(30), "c");
        q.push(SimTime(10), "a");
        q.push(SimTime(20), "b");
        let order: Vec<_> = q.into_ordered_vec().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(SimTime(5), i);
        }
        let order: Vec<_> = q.into_ordered_vec().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime(9), ());
        q.push(SimTime(3), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime(3)));
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime(9)));
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime(10), 1);
        q.push(SimTime(5), 0);
        assert_eq!(q.pop(), Some((SimTime(5), 0)));
        q.push(SimTime(7), 2);
        assert_eq!(q.pop(), Some((SimTime(7), 2)));
        assert_eq!(q.pop(), Some((SimTime(10), 1)));
        assert_eq!(q.pop(), None);
    }
}
