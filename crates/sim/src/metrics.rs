//! Deterministic metrics: saturating counters and fixed-bucket
//! histograms aggregated into a [`MetricsRegistry`].
//!
//! The registry's *deterministic view* ([`MetricsRegistry::render`])
//! must be bit-identical at any worker count. Two rules make that
//! hold:
//!
//! 1. **Only order-free aggregates.** Counters merge with saturating
//!    addition and histogram buckets merge bucket-wise — both
//!    commutative and associative — so per-worker shards
//!    ([`MetricsShard`]) can be merged in any order and still land on
//!    the same totals. The pipeline nevertheless merges shards in
//!    input-index order ([`MetricsRegistry::absorb_in_order`]), so
//!    even a non-commutative future aggregate would stay
//!    deterministic.
//! 2. **Wall-clock stays out of the deterministic view.** Stage wall
//!    times are recorded separately ([`MetricsRegistry::record_timing`])
//!    and never rendered by [`MetricsRegistry::render`]; they feed the
//!    `taster profile` tree and `BENCH_pipeline.json` instead.
//!
//! Counter adds saturate rather than wrap: a metrics overflow must
//! never turn a huge count into a small one (or panic a release
//! pipeline), and saturation keeps the merge associative
//! (`min(a + b, MAX)` composes).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

/// Canonical pipeline stage keys, in pipeline order. The report's
/// metrics section, the `taster profile` tree and `BENCH_pipeline.json`
/// all key stage data by these names, which is what keeps them from
/// ever disagreeing.
pub const STAGE_KEYS: [&str; 10] = [
    STAGE_GENERATE,
    STAGE_COLLECT,
    STAGE_BLACKLIST,
    STAGE_CRAWL,
    STAGE_CLASSIFY,
    STAGE_COVERAGE,
    STAGE_PURITY,
    STAGE_PROPORTIONALITY,
    STAGE_TIMING,
    STAGE_RENDER,
];

/// World generation: ground truth + mail world (provider replay).
pub const STAGE_GENERATE: &str = "generate";
/// Feed collection (content feeds + the human-curated feed).
pub const STAGE_COLLECT: &str = "collect";
/// Blacklist simulation (dbl, uribl collectors).
pub const STAGE_BLACKLIST: &str = "blacklist";
/// Crawl/oracle/tagger pass over the candidate union.
pub const STAGE_CRAWL: &str = "crawl";
/// Live/tagged set derivation after the crawl.
pub const STAGE_CLASSIFY: &str = "classify";
/// Coverage analyses (Table 3, Figs 1–2).
pub const STAGE_COVERAGE: &str = "coverage";
/// Purity analysis (Table 2).
pub const STAGE_PURITY: &str = "purity";
/// Proportionality analyses (Figs 7–8).
pub const STAGE_PROPORTIONALITY: &str = "proportionality";
/// Timing analyses (Figs 9–12).
pub const STAGE_TIMING: &str = "timing";
/// Plain-text report rendering (all tables and figures).
pub const STAGE_RENDER: &str = "render";

/// Auxiliary stage keys: timed scopes outside the canonical pipeline
/// inventory (bench and replication drivers), declared here so the
/// stage registry stays complete — `taster lint` checks every
/// `stage()`/`time_stage()` call site against
/// [`STAGE_KEYS`] ∪ [`AUX_STAGE_KEYS`], in both directions.
pub const AUX_STAGE_KEYS: [&str; 3] = [
    STAGE_COLLECT_FAULTED,
    STAGE_CLASSIFY_FAULTED,
    STAGE_REPLICATE,
];

/// Fault-injected feed collection (bench only; not one of the
/// report's canonical stages).
pub const STAGE_COLLECT_FAULTED: &str = "collect_faulted";
/// Fault-injected classification (bench only).
pub const STAGE_CLASSIFY_FAULTED: &str = "classify_faulted";
/// The multi-seed replication driver (`taster replicate`).
pub const STAGE_REPLICATE: &str = "replicate";

/// A fixed-bucket histogram over `u64` values.
///
/// `bounds` are strictly increasing upper bucket edges: a value `v`
/// lands in the first bucket whose bound satisfies `v <= bound`
/// (edges belong to the bucket they bound), and values above the last
/// bound land in the overflow bucket. Bucket counts saturate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
}

impl Histogram {
    /// Builds an empty histogram. Panics on unsorted or duplicate
    /// bounds (a programmer error: bucket layouts are static).
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
        }
    }

    /// The bucket index `value` lands in (edges inclusive; the last
    /// index is the overflow bucket).
    pub fn bucket_index(&self, value: u64) -> usize {
        self.bounds.partition_point(|&bound| bound < value)
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.observe_n(value, 1);
    }

    /// Records `n` observations of `value` at once (saturating).
    pub fn observe_n(&mut self, value: u64, n: u64) {
        let i = self.bucket_index(value);
        self.counts[i] = self.counts[i].saturating_add(n);
    }

    /// Bucket-wise merge (saturating). Panics on mismatched layouts —
    /// shards of one metric always share the static bucket layout.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bucket layouts differ");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a = a.saturating_add(*b);
        }
    }

    /// Upper bucket edges.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (`bounds.len() + 1` entries; last = overflow).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations across all buckets (saturating).
    pub fn total(&self) -> u64 {
        self.counts
            .iter()
            .fold(0u64, |acc, &c| acc.saturating_add(c))
    }

    fn render_into(&self, out: &mut String) {
        for (i, &c) in self.counts.iter().enumerate() {
            if i > 0 {
                out.push_str(" | ");
            }
            match self.bounds.get(i) {
                Some(bound) => {
                    let _ = write!(out, "le{bound} {c}");
                }
                None => {
                    let _ = write!(out, "inf {c}");
                }
            }
        }
    }
}

/// A plain (non-thread-safe) bundle of counters and histograms.
///
/// Hot loops accumulate into a shard-local `MetricsShard` (or into
/// plain integers folded into one) and merge it into the shared
/// [`MetricsRegistry`] once per shard, keeping per-record overhead to
/// integer arithmetic.
#[derive(Debug, Clone, Default)]
pub struct MetricsShard {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsShard {
    /// An empty shard.
    pub fn new() -> MetricsShard {
        MetricsShard::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Adds `delta` to counter `name` (saturating).
    pub fn add(&mut self, name: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        let slot = self.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Records one observation into histogram `name`, creating it with
    /// `bounds` on first use.
    pub fn observe(&mut self, name: &str, bounds: &[u64], value: u64) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Merges a whole histogram into slot `name`.
    pub fn merge_histogram(&mut self, name: &str, hist: &Histogram) {
        match self.histograms.entry(name.to_string()) {
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(hist),
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(hist.clone());
            }
        }
    }

    /// Merges another shard into this one (saturating, bucket-wise).
    pub fn merge(&mut self, other: &MetricsShard) {
        for (name, &delta) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(delta);
        }
        for (name, hist) in &other.histograms {
            self.merge_histogram(name, hist);
        }
    }

    /// Current value of counter `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    shard: MetricsShard,
    /// Stage wall times in seconds — excluded from the deterministic
    /// view. Repeated recordings keep the minimum (best-of semantics,
    /// matching the bench harness's noise-floor convention).
    timings: BTreeMap<String, f64>,
}

/// The shared, thread-safe metrics sink of one observed run.
///
/// A disabled registry ([`MetricsRegistry::off`]) turns every method
/// into a no-op, so instrumented code paths cost nothing on the
/// default (unobserved) pipeline.
#[derive(Debug)]
pub struct MetricsRegistry {
    on: bool,
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// A disabled registry: every operation is a no-op.
    pub fn off() -> MetricsRegistry {
        MetricsRegistry {
            on: false,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// An enabled registry.
    pub fn on() -> MetricsRegistry {
        MetricsRegistry {
            on: true,
            inner: Mutex::new(RegistryInner::default()),
        }
    }

    /// Whether recording is enabled. Hot paths check this once per
    /// shard and skip all accumulation when off.
    pub fn is_on(&self) -> bool {
        self.on
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        // A poisoned lock means a worker panicked mid-update; the
        // counters are still structurally sound, so recover the inner
        // data rather than compounding the panic.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `delta` to counter `name` (saturating; no-op when off).
    pub fn add(&self, name: &str, delta: u64) {
        if self.on {
            self.lock().shard.add(name, delta);
        }
    }

    /// Records one histogram observation (no-op when off).
    pub fn observe(&self, name: &str, bounds: &[u64], value: u64) {
        if self.on {
            self.lock().shard.observe(name, bounds, value);
        }
    }

    /// Merges one shard (no-op when off).
    pub fn absorb(&self, shard: &MetricsShard) {
        if self.on && !shard.is_empty() {
            self.lock().shard.merge(shard);
        }
    }

    /// Merges per-worker shards in input-index order (no-op when off).
    /// All current aggregates are order-free, but merging in a fixed
    /// order keeps the determinism contract independent of that fact.
    pub fn absorb_in_order(&self, shards: &[MetricsShard]) {
        if !self.on {
            return;
        }
        let mut inner = self.lock();
        for shard in shards {
            inner.shard.merge(shard);
        }
    }

    /// Records a stage wall time in seconds, keeping the minimum
    /// across repeated recordings (no-op when off). Wall times never
    /// appear in [`MetricsRegistry::render`].
    pub fn record_timing(&self, stage: &str, secs: f64) {
        if !self.on {
            return;
        }
        let mut inner = self.lock();
        let slot = inner
            .timings
            .entry(stage.to_string())
            .or_insert(f64::INFINITY);
        if secs < *slot {
            *slot = secs;
        }
    }

    /// Runs `f` and records its wall time under `stage` (best-of
    /// across repeats). Together with [`MetricsRegistry::stopwatch`]
    /// this is the registry's only clock: keeping the `Instant` reads
    /// here preserves the wall-clock quarantine — the `taster lint`
    /// wall-clock rule allows `Instant` only in this module, `trace`,
    /// and `core::profile`.
    pub fn time_stage<T>(&self, stage: &str, f: impl FnOnce() -> T) -> T {
        let started = std::time::Instant::now();
        let out = f();
        self.record_timing(stage, started.elapsed().as_secs_f64());
        out
    }

    /// Starts a wall-clock stopwatch. See [`Stopwatch`].
    pub fn stopwatch() -> Stopwatch {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// The recorded wall time for `stage`, if any.
    pub fn timing(&self, stage: &str) -> Option<f64> {
        if !self.on {
            return None;
        }
        self.lock().timings.get(stage).copied()
    }

    /// All recorded stage timings, sorted by stage name.
    pub fn timings(&self) -> Vec<(String, f64)> {
        if !self.on {
            return Vec::new();
        }
        self.lock()
            .timings
            .iter()
            .map(|(k, &v)| (k.clone(), v))
            .collect()
    }

    /// Current value of counter `name` (0 when absent or off).
    pub fn counter(&self, name: &str) -> u64 {
        if !self.on {
            return 0;
        }
        self.lock().shard.counter(name)
    }

    /// A snapshot of the aggregated shard.
    pub fn snapshot(&self) -> MetricsShard {
        self.lock().shard.clone()
    }

    /// The deterministic view: counters then histograms, sorted by
    /// name, wall times excluded. Bit-identical at any worker count.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for (name, value) in &inner.shard.counters {
            let _ = writeln!(out, "counter   {name:<42} {value}");
        }
        for (name, hist) in &inner.shard.histograms {
            let _ = write!(out, "histogram {name:<42} ");
            hist.render_into(&mut out);
            out.push('\n');
        }
        out
    }
}

/// A plain wall-clock stopwatch for serving-path latency measurement
/// (`taster loadgen`, the serve watchdog). Lives in this module so the
/// `Instant` stays inside the wall-clock quarantine; simulation code
/// must keep using [`crate::SimTime`].
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    /// Seconds elapsed since the stopwatch started.
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Microseconds elapsed since the stopwatch started.
    pub fn elapsed_micros(&self) -> u64 {
        self.started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_edges_are_inclusive() {
        let mut h = Histogram::new(&[1, 2, 5]);
        for v in [0, 1, 2, 3, 5, 6] {
            h.observe(v);
        }
        // 0,1 -> le1; 2 -> le2; 3,5 -> le5; 6 -> inf
        assert_eq!(h.counts(), &[2, 1, 2, 1]);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn counters_saturate() {
        let mut s = MetricsShard::new();
        s.add("x", u64::MAX - 1);
        s.add("x", 5);
        assert_eq!(s.counter("x"), u64::MAX);
    }

    #[test]
    fn shard_merge_order_is_irrelevant() {
        let mut a = MetricsShard::new();
        a.add("c", 3);
        a.observe("h", &[10], 4);
        let mut b = MetricsShard::new();
        b.add("c", 7);
        b.add("d", 1);
        b.observe("h", &[10], 40);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counter("c"), ba.counter("c"));
        assert_eq!(ab.counter("d"), ba.counter("d"));
        assert_eq!(ab.histogram("h"), ba.histogram("h"));
    }

    #[test]
    fn off_registry_is_a_no_op() {
        let r = MetricsRegistry::off();
        r.add("x", 10);
        r.observe("h", &[1], 1);
        r.record_timing("collect", 0.5);
        assert_eq!(r.counter("x"), 0);
        assert_eq!(r.timing("collect"), None);
        assert!(r.render().is_empty());
    }

    #[test]
    fn render_is_sorted_and_excludes_timings() {
        let r = MetricsRegistry::on();
        r.add("z/last", 1);
        r.add("a/first", 2);
        r.record_timing("collect", 1.25);
        let text = r.render();
        let a = text.find("a/first").expect("a/first rendered");
        let z = text.find("z/last").expect("z/last rendered");
        assert!(a < z, "counters sorted by name");
        assert!(!text.contains("1.25"), "wall time leaked into render");
    }

    #[test]
    fn timings_keep_the_minimum() {
        let r = MetricsRegistry::on();
        r.record_timing("collect", 2.0);
        r.record_timing("collect", 1.0);
        r.record_timing("collect", 3.0);
        assert_eq!(r.timing("collect"), Some(1.0));
    }
}
