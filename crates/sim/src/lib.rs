//! # taster-sim
//!
//! The deterministic discrete-event kernel under the *Taster's Choice*
//! spam-ecosystem simulator.
//!
//! Reproducibility is a core requirement of a measurement-replication
//! toolkit: every experiment must be a pure function of its scenario
//! and seed. This crate supplies the three primitives that make that
//! possible:
//!
//! * [`time`] — [`time::SimTime`] (seconds since scenario epoch) and
//!   [`time::TimeWindow`], with day/hour arithmetic used throughout the
//!   timing analyses.
//! * [`rng`] — named, independent random streams derived from a single
//!   master seed ([`rng::RngStream`]). Streams are keyed by string so
//!   adding a collector or analysis never perturbs the draws consumed
//!   by ground-truth generation.
//! * [`queue`] — a stable event queue ([`queue::EventQueue`]) ordering
//!   events by `(time, insertion sequence)` so simultaneous events pop
//!   in a deterministic order.
//! * [`par`] — deterministic fan-out over scoped threads
//!   ([`par::Parallelism`]): ordered result merge plus per-task RNG
//!   streams keep parallel runs bit-identical to serial ones.
//! * [`fault`] — deterministic fault injection
//!   ([`fault::FaultPlan`]): collector outages, record loss, crawler
//!   timeouts and blacklist snapshot delays, every decision a pure
//!   function of `(seed, stage, event index)`.
//! * [`metrics`] / [`trace`] / [`obs`] — deterministic observability:
//!   saturating counters and fixed-bucket histograms
//!   ([`metrics::MetricsRegistry`]) plus nested stage spans
//!   ([`trace::Tracer`]), bundled into one [`obs::Obs`] handle whose
//!   deterministic views are bit-identical at any worker count.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod obs;
pub mod par;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use fault::{FaultPlan, FaultProfile, Outage, RecordFault};
pub use metrics::{Histogram, MetricsRegistry, MetricsShard};
pub use obs::Obs;
pub use par::Parallelism;
pub use queue::EventQueue;
pub use rng::RngStream;
pub use time::{SimTime, TimeWindow, DAY, HOUR, MINUTE};
pub use trace::{SpanTiming, Tracer};
