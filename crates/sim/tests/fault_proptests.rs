//! Property-based tests of the fault layer's determinism contract:
//! every decision a [`FaultPlan`] makes is a pure function of
//! `(seed, stage, event index)` — re-asking never changes the answer,
//! and decisions for distinct keys come from independent streams, so
//! the order in which workers ask is irrelevant.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use taster_sim::{FaultPlan, FaultProfile, RecordFault};

fn arbitrary_profile() -> impl Strategy<Value = FaultProfile> {
    (
        (0.0f64..0.33, 0.0f64..0.33, 0.0f64..0.33),
        (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0),
    )
        .prop_map(|((drop, dup, trunc), (dns, http, snap))| FaultProfile {
            name: "prop".to_string(),
            record_drop_prob: drop,
            record_duplicate_prob: dup,
            record_truncate_prob: trunc,
            dns_servfail_prob: dns,
            http_timeout_prob: http,
            snapshot_truncate_prob: snap,
            ..FaultProfile::off()
        })
}

fn stage() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("Hu".to_string()),
        Just("mx1".to_string()),
        Just("Bot".to_string()),
        Just("crawl/dns".to_string()),
        Just("crawl/http".to_string()),
        Just("Hyb/reports".to_string()),
    ]
}

proptest! {
    // Asking the same (seed, stage, index) twice — or from a clone of
    // the plan, as every worker thread does — yields the same decision.
    #[test]
    fn record_fault_is_pure(profile in arbitrary_profile(), seed in any::<u64>(),
                            s in stage(), index in any::<u64>()) {
        profile.validate().unwrap();
        let plan = FaultPlan::new(profile, seed);
        let first = plan.record_fault(&s, index);
        prop_assert_eq!(first, plan.record_fault(&s, index));
        prop_assert_eq!(first, plan.clone().record_fault(&s, index));
    }

    #[test]
    fn snapshot_drop_is_pure(profile in arbitrary_profile(), seed in any::<u64>(),
                             index in any::<u64>()) {
        let plan = FaultPlan::new(profile, seed);
        let first = plan.snapshot_dropped("dbl", index);
        prop_assert_eq!(first, plan.snapshot_dropped("dbl", index));
        prop_assert_eq!(first, plan.clone().snapshot_dropped("dbl", index));
    }

    // Raw decision streams restart from scratch at every derivation:
    // the draw sequence for (stage, index) is a function of the key
    // alone, not of any other stream the plan handed out before.
    #[test]
    fn decision_streams_are_independent_of_history(
        seed in any::<u64>(), s in stage(), index in any::<u64>(),
        noise_index in any::<u64>())
    {
        use rand::RngExt;
        let plan = FaultPlan::new(FaultProfile::lossy_feeds(), seed);
        let fresh: Vec<u64> = {
            let mut rng = plan.stream(&s, index);
            (0..8).map(|_| rng.random()).collect()
        };
        // Burn draws on an unrelated stream, then re-derive.
        let mut other = plan.stream(&s, noise_index ^ 1);
        let _: f64 = other.random();
        let replay: Vec<u64> = {
            let mut rng = plan.stream(&s, index);
            (0..8).map(|_| rng.random()).collect()
        };
        prop_assert_eq!(fresh, replay);
    }

    // An all-zero profile never faults, for any key.
    #[test]
    fn off_profile_never_faults(seed in any::<u64>(), s in stage(), index in any::<u64>()) {
        let plan = FaultPlan::off(seed);
        prop_assert_eq!(plan.record_fault(&s, index), RecordFault::Deliver);
        prop_assert!(!plan.snapshot_dropped(&s, index));
    }
}
