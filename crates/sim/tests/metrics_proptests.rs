//! Property-based tests of the metrics layer's merge algebra: bucket
//! edges belong to the bucket they bound, shard merges commute and
//! associate (the precondition for worker-count-invariant totals), and
//! counters saturate instead of wrapping near `u64::MAX`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use taster_sim::{Histogram, MetricsShard};

/// A small fixed name pool so generated shards collide on keys (a
/// merge over disjoint keys would test nothing).
const NAMES: [&str; 4] = ["collect/events", "crawl/attempts", "fault/dropped", "x"];

/// Strictly increasing bucket bounds, 1..=6 edges.
fn bounds() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000, 1..6).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// One shard as a list of counter adds and histogram observations over
/// the shared name pool and a fixed bucket layout.
fn ops() -> impl Strategy<Value = Vec<(usize, u64)>> {
    proptest::collection::vec((0usize..NAMES.len(), 0u64..1_000_000), 0..24)
}

fn build_shard(ops: &[(usize, u64)], hist_bounds: &[u64]) -> MetricsShard {
    let mut shard = MetricsShard::new();
    for &(name, value) in ops {
        shard.add(NAMES[name], value);
        shard.observe("hist", hist_bounds, value % 1_000);
    }
    shard
}

fn assert_shards_agree(a: &MetricsShard, b: &MetricsShard) -> Result<(), TestCaseError> {
    for name in NAMES {
        prop_assert_eq!(a.counter(name), b.counter(name), "counter {} differs", name);
    }
    prop_assert_eq!(a.histogram("hist"), b.histogram("hist"));
    Ok(())
}

proptest! {
    // A value on a bucket edge lands in the bucket it bounds
    // (`v <= bound`), values between edges land one bucket up, and
    // values above the last edge land in the overflow bucket.
    #[test]
    fn bucket_index_is_the_first_bound_at_or_above(bounds in bounds(), value in 0u64..2_000) {
        let h = Histogram::new(&bounds);
        let i = h.bucket_index(value);
        if i < bounds.len() {
            prop_assert!(value <= bounds[i], "value above its bucket's bound");
        } else {
            prop_assert!(value > *bounds.last().unwrap(), "in-range value overflowed");
        }
        if i > 0 {
            prop_assert!(value > bounds[i - 1], "value at or below the previous bound");
        }
    }

    // Observing each edge value increments exactly that edge's bucket.
    #[test]
    fn edge_values_fill_their_own_bucket(bounds in bounds()) {
        let mut h = Histogram::new(&bounds);
        for &edge in &bounds {
            h.observe(edge);
        }
        let expected: Vec<u64> = (0..=bounds.len())
            .map(|i| u64::from(i < bounds.len()))
            .collect();
        prop_assert_eq!(h.counts(), &expected[..]);
        prop_assert_eq!(h.total(), bounds.len() as u64);
    }

    // Shard merge is commutative: a⊕b == b⊕a for counters and
    // histograms alike. This is what lets worker shards merge in any
    // order without changing the registry totals.
    #[test]
    fn shard_merge_commutes(a in ops(), b in ops(), bounds in bounds()) {
        let (sa, sb) = (build_shard(&a, &bounds), build_shard(&b, &bounds));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        assert_shards_agree(&ab, &ba)?;
    }

    // ... and associative: (a⊕b)⊕c == a⊕(b⊕c), so any shard tree —
    // sequential fold or pairwise reduction — lands on the same totals.
    #[test]
    fn shard_merge_associates(a in ops(), b in ops(), c in ops(), bounds in bounds()) {
        let (sa, sb, sc) = (
            build_shard(&a, &bounds),
            build_shard(&b, &bounds),
            build_shard(&c, &bounds),
        );
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        assert_shards_agree(&left, &right)?;
    }

    // Counter adds near u64::MAX clamp to u64::MAX — they never wrap
    // to a small value, and the clamp composes with merging.
    #[test]
    fn counter_adds_saturate_not_wrap(
        start in (u64::MAX - 1_000)..=u64::MAX,
        deltas in proptest::collection::vec(0u64..2_000, 0..8),
    ) {
        let mut shard = MetricsShard::new();
        shard.add("near_max", start);
        let mut expected = start;
        for &d in &deltas {
            shard.add("near_max", d);
            expected = expected.saturating_add(d);
        }
        prop_assert_eq!(shard.counter("near_max"), expected);
        prop_assert!(shard.counter("near_max") >= start, "counter wrapped");

        // Merging two near-max shards saturates the same way.
        let mut other = MetricsShard::new();
        other.add("near_max", start);
        shard.merge(&other);
        prop_assert_eq!(shard.counter("near_max"), expected.saturating_add(start));
    }

    // Histogram bucket counts saturate bucket-wise on merge.
    #[test]
    fn histogram_merge_saturates(n in 1u64..4) {
        let mut a = Histogram::new(&[10]);
        a.observe_n(5, u64::MAX - 1);
        let mut b = Histogram::new(&[10]);
        b.observe_n(5, n);
        a.merge(&b);
        prop_assert_eq!(a.counts()[0], u64::MAX);
        prop_assert_eq!(a.total(), u64::MAX);
    }
}
