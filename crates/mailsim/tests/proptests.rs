//! Property tests for the mail layer's corpus format.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use proptest::prelude::*;
use taster_mailsim::mbox::{parse_mbox, write_mbox, MboxMessage};
use taster_sim::SimTime;

/// Message text without trailing newlines (the format's normal form);
/// lines are printable ASCII, possibly starting with `From `.
fn message_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[ -~]{0,50}",
            Just("From the director".to_string()),
            Just(">From already quoted".to_string()),
            Just(">>From double".to_string()),
        ],
        0..12,
    )
    .prop_map(|lines| lines.join("\n"))
    .prop_map(|s| s.trim_end_matches('\n').to_string())
    // Wholly-empty trailing lines are not representable (the format
    // is line-oriented); normalise them away.
    .prop_map(|s| {
        let mut t = s;
        while t.ends_with('\n') {
            t.pop();
        }
        t
    })
}

fn sender() -> impl Strategy<Value = String> {
    prop_oneof![Just(String::new()), "[a-z]{1,8}@[a-z]{1,8}\\.(com|org|net)",]
}

proptest! {
    #[test]
    fn mbox_round_trips(
        msgs in proptest::collection::vec(
            (sender(), 0u64..10_000_000, message_text()),
            0..8
        )
    ) {
        let messages: Vec<MboxMessage> = msgs
            .into_iter()
            .map(|(envelope_sender, secs, text)| MboxMessage {
                envelope_sender,
                time: SimTime(secs),
                text,
            })
            .collect();
        let corpus = write_mbox(&messages);
        let parsed = parse_mbox(&corpus).unwrap();
        prop_assert_eq!(parsed.len(), messages.len());
        for (got, want) in parsed.iter().zip(&messages) {
            prop_assert_eq!(&got.envelope_sender, &want.envelope_sender);
            prop_assert_eq!(got.time, want.time);
            // Line-level equality (trailing empty lines are not
            // representable in a line-oriented format).
            let g: Vec<&str> = got.text.lines().collect();
            let w: Vec<&str> = want.text.lines().collect();
            fn trim(mut v: Vec<&str>) -> Vec<&str> {
                while v.last().is_some_and(|l| l.is_empty()) {
                    v.pop();
                }
                v
            }
            prop_assert_eq!(trim(g), trim(w));
        }
    }

    #[test]
    fn parser_never_panics(text in "\\PC{0,400}") {
        let _ = parse_mbox(&text);
    }
}
