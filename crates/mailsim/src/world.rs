//! The assembled mail world.

use crate::benign::{generate_benign_traffic, BenignMailEvent};
use crate::config::MailConfig;
use crate::provider::{run_provider, ProviderOutputs};
use taster_ecosystem::GroundTruth;

/// Relative address-space sizes of the three MX honeypots. mx2 is the
/// big abandoned-domain portfolio (the paper's mx2 was by far the
/// largest feed), mx3 the small newly-registered one.
pub const MX_SIZE_FACTORS: [f64; 3] = [1.0, 5.0, 0.45];

/// Ground truth plus every derived mail-layer stream — the single
/// input the feed collectors consume.
#[derive(Debug, Clone)]
pub struct MailWorld {
    /// The generated ecosystem (universe may contain extra benign
    /// domains interned by the traffic generators).
    pub truth: GroundTruth,
    /// The mail-layer configuration used.
    pub mail_config: MailConfig,
    /// Legitimate trap traffic, time-sorted.
    pub benign_mail: Vec<BenignMailEvent>,
    /// Provider outputs: `Hu` user reports and the incoming-mail oracle.
    pub provider: ProviderOutputs,
}

impl MailWorld {
    /// Builds the world: benign traffic first (extends the universe),
    /// then the provider model. Fails only when `mail_config` is
    /// invalid.
    pub fn build(mut truth: GroundTruth, mail_config: MailConfig) -> Result<MailWorld, String> {
        mail_config.validate()?;
        let benign_mail = generate_benign_traffic(&mut truth, &mail_config, &MX_SIZE_FACTORS);
        let provider = run_provider(&truth, &mail_config)?;
        Ok(MailWorld {
            truth,
            mail_config,
            benign_mail,
            provider,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::EcosystemConfig;

    #[test]
    fn build_produces_all_streams() {
        let truth = GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 3).unwrap();
        let world = MailWorld::build(truth, MailConfig::default().with_scale(0.02)).unwrap();
        assert!(!world.benign_mail.is_empty());
        assert!(!world.provider.reports.is_empty());
        assert!(world.provider.oracle.total() > 0);
        assert!(world.truth.total_volume() > 0);
    }
}
