//! Message rendering.
//!
//! Collectors that model *full-content* feeds receive message text and
//! must extract advertised domains the way real pipelines do: scan the
//! body for URLs, parse them, reduce hosts to registered domains. This
//! module produces that text. Hostnames get random subdomain prefixes
//! and paths so the extraction layer is genuinely exercised (a feed
//! that naively recorded hostnames instead of registered domains would
//! measurably diverge).

use rand::{Rng, RngExt};
use taster_domain::DomainId;
use taster_ecosystem::GroundTruth;
use taster_sim::SimTime;

const SUBJECTS_PHARMA: &[&str] = &[
    "Your prescription is ready",
    "80% off brand medications",
    "Refill reminder - act now",
    "Canadian pharmacy sale",
];
const SUBJECTS_GOODS: &[&str] = &[
    "Luxury watches at replica prices",
    "Designer bags - wholesale",
    "Genuine OEM software downloads",
    "Your exclusive member discount",
];
const SUBJECTS_OTHER: &[&str] = &[
    "You won! claim inside",
    "Meet singles in your area",
    "The ebook they don't want you to read",
    "Final notice regarding your account",
];
const SUBDOMAINS: &[&str] = &["", "www.", "shop.", "secure.", "m.", "go."];
const PATHS: &[&str] = &["/", "/index.html", "/buy", "/sale?id=", "/r/", "/track?c="];

/// A rendered message.
#[derive(Debug, Clone)]
pub struct RenderedMessage {
    /// `From` header value.
    pub from: String,
    /// `Subject` header value.
    pub subject: String,
    /// Full message text (headers + body).
    pub text: String,
}

/// Renders one spam copy: advertised URL plus optional chaff URL
/// embedded in a plausible plain-text body.
pub fn render_spam<R: Rng>(
    truth: &GroundTruth,
    advertised: DomainId,
    chaff: Option<DomainId>,
    time: SimTime,
    rng: &mut R,
) -> RenderedMessage {
    let adv_url = random_url(truth, advertised, rng);
    let subject_pool = match rng.random_range(0..3u8) {
        0 => SUBJECTS_PHARMA,
        1 => SUBJECTS_GOODS,
        _ => SUBJECTS_OTHER,
    };
    let subject = subject_pool[rng.random_range(0..subject_pool.len())].to_string();
    let from = format!(
        "{}@{}",
        sender_localpart(rng),
        truth.universe.table.text(truth.universe.sample_chaff(rng))
    );
    let mut body = String::with_capacity(420);
    body.push_str("Dear customer,\n\n");
    body.push_str("We have a special offer selected for you today.\n");
    body.push_str(&format!("Order here: {adv_url}\n"));
    if let Some(c) = chaff {
        // Chaff placement mimics real messages: formatting/support
        // references to legitimate sites (§3.3).
        let curl = random_url(truth, c, rng);
        body.push_str(&format!("\nAs reviewed on {curl} and trusted sites.\n"));
    }
    body.push_str("\nBest regards,\nCustomer care\n");
    let text = format!(
        "From: {from}\nTo: undisclosed-recipients:;\nSubject: {subject}\nDate: {time}\nMIME-Version: 1.0\n\n{body}"
    );
    RenderedMessage {
        from,
        subject,
        text,
    }
}

/// Renders a legitimate message citing `domains`.
pub fn render_benign<R: Rng>(
    truth: &GroundTruth,
    domains: &[DomainId],
    time: SimTime,
    rng: &mut R,
) -> RenderedMessage {
    let from_dom = domains
        .first()
        .map(|&d| truth.universe.table.text(d).to_string())
        .unwrap_or_else(|| "example.org".to_string());
    let from = format!("{}@{}", sender_localpart(rng), from_dom);
    let subject = "Re: your inquiry".to_string();
    let mut body = String::from("Hi,\n\nFollowing up on our conversation:\n");
    for &d in domains {
        body.push_str(&format!("  see {}\n", random_url(truth, d, rng)));
    }
    body.push_str("\nThanks!\n");
    let text =
        format!("From: {from}\nTo: someone\nSubject: {subject}\nDate: {time}\n\n{body}");
    RenderedMessage {
        from,
        subject,
        text,
    }
}

/// Builds a URL string on `domain` with a random subdomain and path.
pub fn random_url<R: Rng>(truth: &GroundTruth, domain: DomainId, rng: &mut R) -> String {
    let host = truth.universe.table.text(domain);
    let sub = SUBDOMAINS[rng.random_range(0..SUBDOMAINS.len())];
    let path = PATHS[rng.random_range(0..PATHS.len())];
    let tail: String = if path.ends_with('=') || path.ends_with('/') && path.len() > 1 {
        format!("{:x}", rng.random_range(0..0xffffffu32))
    } else {
        String::new()
    };
    format!("http://{sub}{host}{path}{tail}")
}

fn sender_localpart<R: Rng>(rng: &mut R) -> String {
    const NAMES: &[&str] = &["info", "sales", "noreply", "news", "offers", "support"];
    format!(
        "{}{}",
        NAMES[rng.random_range(0..NAMES.len())],
        rng.random_range(0..100u8)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_domain::psl::SuffixList;
    use taster_domain::url::extract_urls;
    use taster_ecosystem::EcosystemConfig;
    use taster_sim::RngStream;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 13).unwrap()
    }

    #[test]
    fn rendered_spam_round_trips_through_extraction() {
        let truth = world();
        let psl = SuffixList::builtin();
        let mut rng = RngStream::new(1, "render-test");
        let mut checked = 0;
        for e in truth.events.iter().take(300) {
            let msg = render_spam(&truth, e.advertised, e.chaff, e.time, &mut rng);
            let urls = extract_urls(&msg.text);
            assert!(!urls.is_empty(), "no URLs extracted from:\n{}", msg.text);
            let mut regs: Vec<String> = urls
                .iter()
                .filter_map(|u| psl.registered_domain(&u.host).map(|r| r.as_str().to_string()))
                .collect();
            regs.sort();
            let adv = truth.universe.table.text(e.advertised).to_string();
            assert!(regs.contains(&adv), "advertised {adv} not in {regs:?}");
            if let Some(c) = e.chaff {
                let chaff = truth.universe.table.text(c).to_string();
                assert!(regs.contains(&chaff), "chaff {chaff} not in {regs:?}");
            }
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn benign_rendering_cites_all_domains() {
        let truth = world();
        let mut rng = RngStream::new(2, "render-benign");
        let d1 = truth.universe.sample_chaff(&mut rng);
        let d2 = truth.universe.sample_chaff(&mut rng);
        let msg = render_benign(&truth, &[d1, d2], SimTime::from_days(3), &mut rng);
        let text1 = truth.universe.table.text(d1);
        let text2 = truth.universe.table.text(d2);
        assert!(msg.text.contains(text1));
        assert!(msg.text.contains(text2));
        assert!(msg.from.contains('@'));
    }

    #[test]
    fn urls_are_parseable() {
        let truth = world();
        let mut rng = RngStream::new(3, "render-url");
        for _ in 0..200 {
            let d = truth.universe.sample_chaff(&mut rng);
            let url = random_url(&truth, d, &mut rng);
            taster_domain::Url::parse(&url).unwrap_or_else(|e| panic!("{url}: {e}"));
        }
    }
}
