//! Message rendering.
//!
//! Collectors that model *full-content* feeds receive message text and
//! must extract advertised domains the way real pipelines do: scan the
//! body for URLs, parse them, reduce hosts to registered domains. This
//! module produces that text. Hostnames get random subdomain prefixes
//! and paths so the extraction layer is genuinely exercised (a feed
//! that naively recorded hostnames instead of registered domains would
//! measurably diverge).

use rand::{Rng, RngExt};
use taster_domain::DomainId;
use taster_ecosystem::GroundTruth;
use taster_sim::SimTime;

const SUBJECTS_PHARMA: &[&str] = &[
    "Your prescription is ready",
    "80% off brand medications",
    "Refill reminder - act now",
    "Canadian pharmacy sale",
];
const SUBJECTS_GOODS: &[&str] = &[
    "Luxury watches at replica prices",
    "Designer bags - wholesale",
    "Genuine OEM software downloads",
    "Your exclusive member discount",
];
const SUBJECTS_OTHER: &[&str] = &[
    "You won! claim inside",
    "Meet singles in your area",
    "The ebook they don't want you to read",
    "Final notice regarding your account",
];
/// Subdomain prefixes URL rendering draws from (public so the
/// collectors' render-free fast path can reconstruct hostnames).
pub const SUBDOMAINS: &[&str] = &["", "www.", "shop.", "secure.", "m.", "go."];
const PATHS: &[&str] = &["/", "/index.html", "/buy", "/sale?id=", "/r/", "/track?c="];

/// A rendered message.
#[derive(Debug, Clone)]
pub struct RenderedMessage {
    /// `From` header value.
    pub from: String,
    /// `Subject` header value.
    pub subject: String,
    /// Full message text (headers + body).
    pub text: String,
}

/// Byte locations of the headers inside a buffer filled by
/// [`render_spam_into`], so collectors can reuse one text buffer per
/// delivery without allocating header copies.
#[derive(Debug, Clone)]
pub struct SpamHeaders {
    /// Byte range of the `From` address within the rendered text.
    pub from: std::ops::Range<usize>,
    /// The chosen subject line.
    pub subject: &'static str,
}

impl SpamHeaders {
    /// The `From` address as a slice of `text`.
    pub fn from_addr<'t>(&self, text: &'t str) -> &'t str {
        &text[self.from.clone()]
    }
}

/// Renders one spam copy into a reusable buffer (cleared first):
/// advertised URL plus optional chaff URL embedded in a plausible
/// plain-text body. This is the collectors' hot path — at full scale
/// every captured delivery renders a message, so the buffer-reusing
/// form avoids three string allocations per copy.
pub fn render_spam_into<R: Rng>(
    text: &mut String,
    truth: &GroundTruth,
    advertised: DomainId,
    chaff: Option<DomainId>,
    time: SimTime,
    rng: &mut R,
) -> SpamHeaders {
    use std::fmt::Write;
    text.clear();
    let adv_url = UrlParts::draw(rng);
    let subject_pool = match rng.random_range(0..3u8) {
        0 => SUBJECTS_PHARMA,
        1 => SUBJECTS_GOODS,
        _ => SUBJECTS_OTHER,
    };
    let subject = subject_pool[rng.random_range(0..subject_pool.len())];
    text.push_str("From: ");
    let from_start = text.len();
    push_sender_localpart(text, rng);
    text.push('@');
    text.push_str(truth.universe.table.text(truth.universe.sample_chaff(rng)));
    let from_end = text.len();
    // Writing to a String cannot fail; ignore the Infallible result.
    let _ = write!(
        text,
        "\nTo: undisclosed-recipients:;\nSubject: {subject}\nDate: {time}\nMIME-Version: 1.0\n\n"
    );
    text.push_str("Dear customer,\n\n");
    text.push_str("We have a special offer selected for you today.\n");
    text.push_str("Order here: ");
    adv_url.push_onto(text, truth, advertised);
    text.push('\n');
    if let Some(c) = chaff {
        // Chaff placement mimics real messages: formatting/support
        // references to legitimate sites (§3.3).
        let curl = UrlParts::draw(rng);
        text.push_str("\nAs reviewed on ");
        curl.push_onto(text, truth, c);
        text.push_str(" and trusted sites.\n");
    }
    text.push_str("\nBest regards,\nCustomer care\n");
    SpamHeaders {
        from: from_start..from_end,
        subject,
    }
}

/// Renders one spam copy into freshly allocated strings. Prefer
/// [`render_spam_into`] in loops.
pub fn render_spam<R: Rng>(
    truth: &GroundTruth,
    advertised: DomainId,
    chaff: Option<DomainId>,
    time: SimTime,
    rng: &mut R,
) -> RenderedMessage {
    let mut text = String::with_capacity(512);
    let headers = render_spam_into(&mut text, truth, advertised, chaff, time, rng);
    RenderedMessage {
        from: headers.from_addr(&text).to_string(),
        subject: headers.subject.to_string(),
        text,
    }
}

/// Renders a legitimate message citing `domains`.
pub fn render_benign<R: Rng>(
    truth: &GroundTruth,
    domains: &[DomainId],
    time: SimTime,
    rng: &mut R,
) -> RenderedMessage {
    let from_dom = domains
        .first()
        .map(|&d| truth.universe.table.text(d).to_string())
        .unwrap_or_else(|| "example.org".to_string());
    let mut from = String::with_capacity(24 + from_dom.len());
    push_sender_localpart(&mut from, rng);
    from.push('@');
    from.push_str(&from_dom);
    let subject = "Re: your inquiry".to_string();
    let mut body = String::from("Hi,\n\nFollowing up on our conversation:\n");
    for &d in domains {
        body.push_str("  see ");
        push_random_url(&mut body, truth, d, rng);
        body.push('\n');
    }
    body.push_str("\nThanks!\n");
    let text = format!("From: {from}\nTo: someone\nSubject: {subject}\nDate: {time}\n\n{body}");
    RenderedMessage {
        from,
        subject,
        text,
    }
}

/// The random draws behind one URL, separated from string assembly so
/// hot paths can draw first and write into a reused buffer later.
struct UrlParts {
    sub: &'static str,
    path: &'static str,
    tail: Option<u32>,
}

impl UrlParts {
    fn draw<R: Rng>(rng: &mut R) -> UrlParts {
        let sub = SUBDOMAINS[rng.random_range(0..SUBDOMAINS.len())];
        let path = PATHS[rng.random_range(0..PATHS.len())];
        let tail = if path.ends_with('=') || path.ends_with('/') && path.len() > 1 {
            Some(rng.random_range(0..0xffffffu32))
        } else {
            None
        };
        UrlParts { sub, path, tail }
    }

    fn push_onto(&self, out: &mut String, truth: &GroundTruth, domain: DomainId) {
        use std::fmt::Write;
        out.push_str("http://");
        out.push_str(self.sub);
        out.push_str(truth.universe.table.text(domain));
        out.push_str(self.path);
        if let Some(tail) = self.tail {
            // Writing to a String cannot fail; ignore the result.
            let _ = write!(out, "{tail:x}");
        }
    }
}

/// Replays exactly the [`render_spam_into`] draws needed to learn the
/// subdomain prefix of each URL in the body, without rendering any
/// text. Returns the advertised URL's [`SUBDOMAINS`] index, plus the
/// chaff URL's when `chaff_distinct` (a chaff domain different from
/// the advertised one) demands it.
///
/// Domain extraction reduces each URL host to its registered domain
/// and de-duplicates by first appearance, so for a body rendered by
/// `render_spam_into` only these hosts can reach a feed:
/// `sub_adv ++ advertised` always, and `sub_chaff ++ chaff` when the
/// chaff domain is distinct. Every intervening draw is consumed with
/// the same method and operand type as the real renderer so the
/// shared per-event render stream replays bit-identically.
pub fn replay_spam_url_hosts<R: Rng>(rng: &mut R, chaff_distinct: bool) -> (usize, Option<usize>) {
    let adv_sub = rng.random_range(0..SUBDOMAINS.len());
    if !chaff_distinct {
        // The remaining draws cannot affect extracted (domain, host)
        // pairs; the per-event child stream is simply abandoned.
        return (adv_sub, None);
    }
    // Advertised path (+ tail when the path format takes one).
    let path = PATHS[rng.random_range(0..PATHS.len())];
    if path.ends_with('=') || path.ends_with('/') && path.len() > 1 {
        let _ = rng.random_range(0..0xffffffu32);
    }
    // Subject pool then subject; every pool has the same length, so
    // the draw sequence is pool-independent.
    debug_assert!(
        SUBJECTS_PHARMA.len() == SUBJECTS_GOODS.len()
            && SUBJECTS_GOODS.len() == SUBJECTS_OTHER.len()
    );
    let _ = rng.random_range(0..3u8);
    let _ = rng.random_range(0..SUBJECTS_PHARMA.len());
    // Sender localpart (name + digits) and From-header domain (one
    // popularity draw; never URL-extracted).
    let _ = rng.random_range(0..SENDER_NAMES.len());
    let _ = rng.random_range(0..100u8);
    let _: f64 = rng.random();
    let chaff_sub = rng.random_range(0..SUBDOMAINS.len());
    (adv_sub, Some(chaff_sub))
}

/// Appends a URL on `domain` with a random subdomain and path onto
/// `out`, allocation-free (buffer growth aside).
pub fn push_random_url<R: Rng>(
    out: &mut String,
    truth: &GroundTruth,
    domain: DomainId,
    rng: &mut R,
) {
    UrlParts::draw(rng).push_onto(out, truth, domain);
}

/// Builds a URL string on `domain` with a random subdomain and path.
/// Prefer [`push_random_url`] in loops.
pub fn random_url<R: Rng>(truth: &GroundTruth, domain: DomainId, rng: &mut R) -> String {
    let mut out = String::with_capacity(48);
    push_random_url(&mut out, truth, domain, rng);
    out
}

const SENDER_NAMES: &[&str] = &["info", "sales", "noreply", "news", "offers", "support"];

fn push_sender_localpart<R: Rng>(out: &mut String, rng: &mut R) {
    use std::fmt::Write;
    out.push_str(SENDER_NAMES[rng.random_range(0..SENDER_NAMES.len())]);
    // Writing to a String cannot fail; ignore the result.
    let _ = write!(out, "{}", rng.random_range(0..100u8));
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_domain::psl::SuffixList;
    use taster_domain::url::extract_urls;
    use taster_ecosystem::EcosystemConfig;
    use taster_sim::RngStream;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 13).unwrap()
    }

    #[test]
    fn rendered_spam_round_trips_through_extraction() {
        let truth = world();
        let psl = SuffixList::builtin();
        let mut rng = RngStream::new(1, "render-test");
        let mut checked = 0;
        for e in truth.sorted_events().iter().take(300) {
            let msg = render_spam(&truth, e.advertised, e.chaff, e.time, &mut rng);
            let urls = extract_urls(&msg.text);
            assert!(!urls.is_empty(), "no URLs extracted from:\n{}", msg.text);
            let mut regs: Vec<String> = urls
                .iter()
                .filter_map(|u| {
                    psl.registered_domain(&u.host)
                        .map(|r| r.as_str().to_string())
                })
                .collect();
            regs.sort();
            let adv = truth.universe.table.text(e.advertised).to_string();
            assert!(regs.contains(&adv), "advertised {adv} not in {regs:?}");
            if let Some(c) = e.chaff {
                let chaff = truth.universe.table.text(c).to_string();
                assert!(regs.contains(&chaff), "chaff {chaff} not in {regs:?}");
            }
            checked += 1;
        }
        assert!(checked > 0);
    }

    #[test]
    fn benign_rendering_cites_all_domains() {
        let truth = world();
        let mut rng = RngStream::new(2, "render-benign");
        let d1 = truth.universe.sample_chaff(&mut rng);
        let d2 = truth.universe.sample_chaff(&mut rng);
        let msg = render_benign(&truth, &[d1, d2], SimTime::from_days(3), &mut rng);
        let text1 = truth.universe.table.text(d1);
        let text2 = truth.universe.table.text(d2);
        assert!(msg.text.contains(text1));
        assert!(msg.text.contains(text2));
        assert!(msg.from.contains('@'));
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let truth = world();
        let mut rng_a = RngStream::new(5, "render-into");
        let mut rng_b = rng_a.clone();
        let mut buf = String::new();
        for e in truth.sorted_events().iter().take(200) {
            let msg = render_spam(&truth, e.advertised, e.chaff, e.time, &mut rng_a);
            let headers =
                render_spam_into(&mut buf, &truth, e.advertised, e.chaff, e.time, &mut rng_b);
            assert_eq!(buf, msg.text);
            assert_eq!(headers.from_addr(&buf), msg.from);
            assert_eq!(headers.subject, msg.subject);
        }
    }

    #[test]
    fn replay_pins_full_render_hosts() {
        // The render-free fast path must reconstruct exactly the URL
        // hosts a full render would put in the body, from the same
        // per-event stream.
        let truth = world();
        let base = RngStream::new(truth.seed, "replay-pin");
        for (i, e) in truth.sorted_events().iter().take(400).enumerate() {
            let mut full_rng = base.child(truth.seed, "replay-pin", i as u64);
            let mut replay_rng = full_rng.clone();
            let mut buf = String::new();
            let _ = render_spam_into(
                &mut buf,
                &truth,
                e.advertised,
                e.chaff,
                e.time,
                &mut full_rng,
            );
            let chaff_distinct = e.chaff.is_some_and(|c| c != e.advertised);
            let (adv_sub, chaff_sub) = replay_spam_url_hosts(&mut replay_rng, chaff_distinct);
            let urls = extract_urls(&buf);
            let adv_text = truth.universe.table.text(e.advertised);
            assert_eq!(
                urls[0].host.as_str(),
                format!("{}{}", SUBDOMAINS[adv_sub], adv_text),
                "advertised host, event {i}"
            );
            if let Some(cs) = chaff_sub {
                let chaff_text = truth.universe.table.text(e.chaff.unwrap());
                assert_eq!(
                    urls[1].host.as_str(),
                    format!("{}{}", SUBDOMAINS[cs], chaff_text),
                    "chaff host, event {i}"
                );
                assert_eq!(urls.len(), 2);
            }
        }
    }

    #[test]
    fn push_random_url_matches_random_url() {
        let truth = world();
        let mut rng_a = RngStream::new(6, "render-push-url");
        let mut rng_b = rng_a.clone();
        let mut buf = String::new();
        for _ in 0..200 {
            let d = truth.universe.sample_chaff(&mut rng_a);
            let _ = truth.universe.sample_chaff(&mut rng_b);
            let url = random_url(&truth, d, &mut rng_a);
            buf.clear();
            push_random_url(&mut buf, &truth, d, &mut rng_b);
            assert_eq!(buf, url);
        }
    }

    #[test]
    fn urls_are_parseable() {
        let truth = world();
        let mut rng = RngStream::new(3, "render-url");
        for _ in 0..200 {
            let d = truth.universe.sample_chaff(&mut rng);
            let url = random_url(&truth, d, &mut rng);
            taster_domain::Url::parse(&url).unwrap_or_else(|e| panic!("{url}: {e}"));
        }
    }
}
