//! The very large Web-mail provider: user reports and the incoming
//! mail oracle.
//!
//! Two of the paper's data sources come from one organisation:
//!
//! * the **`Hu` feed** — messages users flagged with "this is spam".
//!   Reported domains feed the provider's own filters, so a domain's
//!   report volume *saturates* shortly after it is first reported —
//!   the mechanism the paper offers for `Hu` being simultaneously the
//!   smallest feed by volume and the broadest by coverage (§4.2.1);
//! * the **incoming mail oracle** — normalised per-domain message
//!   counts measured at the incoming mail servers (pre-filtering) over
//!   five days, used for volume coverage (Fig 3) and proportionality
//!   (Figs 7–8).

use crate::config::MailConfig;
use rand::RngExt;
use taster_domain::fx::FxHashMap;
use taster_domain::DomainId;
use taster_ecosystem::buffer::EventBuffer;
use taster_ecosystem::campaign::{CampaignStyle, TargetClass};
use taster_ecosystem::event::SpamEvent;
use taster_ecosystem::GroundTruth;
use taster_sim::{RngStream, SimTime, TimeWindow, DAY};
use taster_stats::sample::standard_normal;
use taster_stats::EmpiricalDist;

/// Sorted-position bucket width for the provider loop. The provider's
/// filter-feedback state is sequential in *time-sorted* order, but the
/// event log is only available as a generation-order replay stream; so
/// events are consumed bucket-by-bucket — one full replay per bucket,
/// scattering the events whose sorted position falls inside it into a
/// struct-of-arrays buffer (~26 bytes/row). Peak memory is O(bucket),
/// and the RNG/counter state threads across buckets untouched, so the
/// draw sequence is identical to a single sorted pass. The width
/// trades replay passes against resident bucket bytes: 2^21 rows is
/// ~55 MB and two passes at paper scale.
pub const PROVIDER_BUCKET: usize = 1 << 21;

/// One "this is spam" user report.
#[derive(Debug, Clone)]
pub struct UserReport {
    /// When the user clicked the button (delivery + human delay).
    pub time: SimTime,
    /// Domains extracted from the reported message.
    pub domains: Vec<DomainId>,
    /// Ground truth: did this report flag actual spam? (`false` for
    /// reported-but-legitimate newsletters.)
    pub spam: bool,
}

/// Outputs of the provider model.
#[derive(Debug, Clone)]
pub struct ProviderOutputs {
    /// All user reports, time-sorted.
    pub reports: Vec<UserReport>,
    /// Oracle: per-domain message counts over the oracle window.
    pub oracle: EmpiricalDist,
    /// The oracle measurement window.
    pub oracle_window: TimeWindow,
}

/// Runs the provider model over the ground-truth event stream.
///
/// Deterministic in `(truth.seed, config)`; spam reports and the
/// oracle draw from dedicated RNG streams. Fails only when `config`
/// is invalid.
pub fn run_provider(truth: &GroundTruth, config: &MailConfig) -> Result<ProviderOutputs, String> {
    config.validate()?;
    let mut rng = RngStream::new(truth.seed, "mailsim/provider");
    let mut reports: Vec<UserReport> = Vec::new();

    let oracle_window = TimeWindow::new(
        SimTime::from_days(config.oracle_start_day),
        SimTime::from_days(config.oracle_start_day + config.oracle_days),
    );
    let mut oracle = EmpiricalDist::new();

    // Reports-per-domain so far (drives the filtering feedback loop).
    let mut report_counts: FxHashMap<DomainId, u32> = FxHashMap::default();
    // Copies-per-domain seen at the incoming servers (drives filter
    // learning: fresh domains inbox freely).
    let mut seen_counts: FxHashMap<DomainId, u64> = FxHashMap::default();
    // Copies-per-campaign (content learning: a campaign that rotates
    // throwaway domains — the poisoning — is still one content
    // signature).
    let mut campaign_counts: Vec<u64> = vec![0; truth.campaigns.len()];

    let ln_median = config.report_delay_median_secs.ln();

    let n = truth.log.len;
    // The body below is sequential in time-sorted order: the RNG and
    // the filter-feedback counters thread row to row. It runs either
    // directly over the sorted cache or over scatter buckets rebuilt
    // from the replay stream — the rows arrive in the same order
    // either way, so the draw sequence is identical.
    let mut process_row = |bucket: &EventBuffer, r: usize| {
        {
            let event: SpamEvent = bucket.event(r);
            // ---- incoming mail oracle: counts *all* mail crossing the
            // incoming servers, before filtering.
            let reach = match event.target {
                TargetClass::BruteForce => config.reach.brute,
                TargetClass::Harvested(_) => config.reach.harvested,
                TargetClass::Purchased => config.reach.purchased,
                TargetClass::Social => config.reach.social,
            };
            let to_provider = rng.random_bool(reach);
            if to_provider && oracle_window.contains(event.time) {
                oracle.add(event.advertised.0, 1);
                if let Some(c) = event.chaff {
                    oracle.add(c.0, 1);
                }
            }
            if !to_provider {
                return;
            }

            // ---- inbox placement.
            let campaign = truth.campaign(event.campaign);
            let seen = seen_counts.entry(event.advertised).or_insert(0);
            *seen += 1;
            let camp_seen = &mut campaign_counts[event.campaign.index()];
            *camp_seen += 1;
            // Per-domain novelty is what warm-ups exploit; campaign-level
            // content learning only defeats campaigns that never vary
            // their message — the poisoning stream.
            let learned = *seen > config.filter_volume_threshold
                || (campaign.poison && *camp_seen > config.campaign_filter_volume_threshold);
            let base_inbox = if !learned {
                // Filters have not learned the domain yet: the warm-up
                // phase sails through (deliverability testing works).
                config.quiet_inbox_prob
            } else {
                match campaign.style {
                    CampaignStyle::Loud => config.loud_inbox_prob,
                    CampaignStyle::Quiet => config.quiet_inbox_prob,
                }
            };
            let filtered = report_counts
            .get(&event.advertised)
            .is_some_and(|&n| n >= config.filter_threshold)
            // The poisoning stream rotates domains per message but its
            // content never changes: once the campaign signature is
            // learned, fresh domains buy it nothing.
            || (campaign.poison && learned);
            let inbox_prob = if filtered {
                base_inbox * config.filter_leak
            } else {
                base_inbox
            };
            if !rng.random_bool(inbox_prob) {
                return;
            }

            // ---- the human.
            if !rng.random_bool(config.report_prob) {
                return;
            }
            *report_counts.entry(event.advertised).or_insert(0) += 1;
            let delay_secs =
                (ln_median + config.report_delay_sigma * standard_normal(&mut rng)).exp();
            let mut domains = vec![event.advertised];
            if let Some(c) = event.chaff {
                domains.push(c);
            }
            reports.push(UserReport {
                time: event.time.plus(delay_secs as u64),
                domains,
                spam: true,
            });
        }
    };

    if let Some(cache) = truth.cache() {
        // In-core: the sorted cache *is* the bucket sequence — one
        // linear pass, no replays.
        for r in 0..cache.len() {
            process_row(cache, r);
        }
    } else {
        // Out of core: one full replay per bucket, scattering the rows
        // whose sorted position falls inside it. The bucket width obeys
        // the memory budget (capped at the classic provider bucket).
        let bucket_rows = truth.config.budget_rows(n as u64).clamp(1, PROVIDER_BUCKET);
        let rank = &truth.log.rank;
        let mut bucket = EventBuffer::default();
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + bucket_rows).min(n);
            bucket.reset_for_scatter(hi - lo);
            #[cfg(debug_assertions)]
            let mut filled = vec![false; hi - lo];
            for (g, event) in truth.events().enumerate() {
                let r = rank[g] as usize;
                if r >= lo && r < hi {
                    bucket.set(r - lo, &event, r as u32);
                    #[cfg(debug_assertions)]
                    {
                        filled[r - lo] = true;
                    }
                }
            }
            // `rank` is a permutation of 0..n, so every slot is filled.
            #[cfg(debug_assertions)]
            debug_assert!(filled.iter().all(|&f| f), "hole in sorted-event bucket");
            for r in 0..bucket.len() {
                process_row(&bucket, r);
            }
            lo = hi;
        }
    }

    // ---- users reporting legitimate commercial mail (§3.2: "human
    // identified spam can include legitimate commercial e-mail").
    let mut fp_rng = RngStream::new(truth.seed, "mailsim/provider-fp");
    let total_fp = (config.hu_benign_reports_per_day * truth.config.days as f64).round() as u64;
    for _ in 0..total_fp {
        let t = SimTime(fp_rng.random_range(0..truth.config.days * DAY));
        let d = truth.universe.sample_chaff(&mut fp_rng);
        reports.push(UserReport {
            time: t,
            domains: vec![d],
            spam: false,
        });
    }

    // ---- background legitimate volume at the incoming servers.
    let legit_msgs = (config.oracle_legit_per_day * config.oracle_days as f64).round() as u64;
    for _ in 0..legit_msgs {
        let d = truth.universe.sample_chaff(&mut fp_rng);
        oracle.add(d.0, 1);
    }

    reports.sort_by_key(|r| r.time);
    Ok(ProviderOutputs {
        reports,
        oracle,
        oracle_window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::domains::DomainKind;
    use taster_ecosystem::EcosystemConfig;

    fn outputs() -> (GroundTruth, ProviderOutputs) {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.05), 17).unwrap();
        let out = run_provider(&truth, &MailConfig::default().with_scale(0.05)).unwrap();
        (truth, out)
    }

    #[test]
    fn reports_are_time_sorted_and_mixed() {
        let (_, out) = outputs();
        assert!(out.reports.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(out.reports.iter().any(|r| r.spam));
        assert!(out.reports.iter().any(|r| !r.spam));
    }

    #[test]
    fn report_volume_saturates_for_loud_domains() {
        let (truth, out) = outputs();
        let cfg = MailConfig::default();
        // Count spam reports per advertised (first) domain.
        let mut per_domain: FxHashMap<DomainId, u32> = FxHashMap::default();
        for r in out.reports.iter().filter(|r| r.spam) {
            *per_domain.entry(r.domains[0]).or_insert(0) += 1;
        }
        // The filter threshold caps per-domain reports; allow slack for
        // in-flight copies at the moment the threshold trips.
        let max = per_domain.values().copied().max().unwrap_or(0);
        assert!(
            max <= cfg.filter_threshold * 4,
            "max reports per domain {max} should saturate near {}",
            cfg.filter_threshold
        );
        let _ = truth;
    }

    #[test]
    fn oracle_counts_fall_in_window_and_include_chaff() {
        let (truth, out) = outputs();
        assert!(out.oracle.total() > 0);
        // Some benign (chaff) domains must appear in the oracle.
        let has_benign = out.oracle.iter().any(|(k, _)| {
            matches!(
                truth.universe.record(taster_domain::DomainId(k)).kind,
                DomainKind::Benign
            )
        });
        assert!(has_benign);
    }

    #[test]
    fn quiet_campaign_domains_get_reported() {
        let (truth, out) = outputs();
        use std::collections::HashSet;
        let reported: HashSet<DomainId> = out
            .reports
            .iter()
            .filter(|r| r.spam)
            .map(|r| r.domains[0])
            .collect();
        let mut quiet_total = 0usize;
        let mut quiet_seen = 0usize;
        for c in truth
            .campaigns
            .iter()
            .filter(|c| c.style == CampaignStyle::Quiet && !c.poison)
        {
            for p in &c.domains {
                quiet_total += 1;
                let advertised_ids = [Some(p.storefront), p.landing];
                if advertised_ids
                    .iter()
                    .flatten()
                    .any(|d| reported.contains(d))
                {
                    quiet_seen += 1;
                }
            }
        }
        let frac = quiet_seen as f64 / quiet_total.max(1) as f64;
        assert!(
            frac > 0.5,
            "provider sees most quiet-campaign domains, got {frac:.2}"
        );
    }

    #[test]
    fn deterministic() {
        let truth = GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 5).unwrap();
        let a = run_provider(&truth, &MailConfig::default()).unwrap();
        let b = run_provider(&truth, &MailConfig::default()).unwrap();
        assert_eq!(a.reports.len(), b.reports.len());
        assert_eq!(a.oracle.total(), b.oracle.total());
    }
}
