//! # taster-mailsim
//!
//! The mail-delivery substrate: everything that happens between a
//! campaign emitting a copy and a feed collector observing it.
//!
//! * [`render`] — RFC 5322-flavoured message rendering. Collectors that
//!   model full-content feeds (MX honeypots, botnet monitors) parse
//!   advertised domains back *out* of rendered bodies through
//!   `taster-domain`'s URL scanner and suffix list, exactly as a real
//!   pipeline would.
//! * [`provider`] — the very large Web-mail provider behind the `Hu`
//!   feed and the *incoming mail oracle* (§4.2.2): per-class reach of
//!   address lists into the provider's user base, baseline filtering,
//!   "this is spam" user reports with human-time delays, and the
//!   volume-saturating feedback loop (reported domains get filtered,
//!   capping high-volume campaigns' representation).
//! * [`benign`] — legitimate mail that pollutes collectors: typo'd
//!   recipient domains landing in MX honeypots (doppelganger traffic,
//!   §3.3), dummy sign-up addresses, and user-reported legitimate
//!   newsletters.
//! * [`mbox`] — RFC 4155 corpus serialization (mboxrd quoting), so
//!   simulated feeds can be exported like the static corpora of §2.
//! * [`world`] — [`world::MailWorld`]: ground truth plus all derived
//!   mail-layer streams, the single input the feed layer consumes.

#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benign;
pub mod config;
pub mod mbox;
pub mod provider;
pub mod render;
pub mod world;

pub use config::MailConfig;
pub use world::MailWorld;
