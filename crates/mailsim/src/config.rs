//! Mail-layer knobs.

/// Probability that one delivered copy of each address-list class is
/// addressed to a user of the big Web-mail provider.
#[derive(Debug, Clone, Copy)]
pub struct ProviderReach {
    /// Brute-force lists (the provider's namespace is heavily guessed).
    pub brute: f64,
    /// Harvested lists.
    pub harvested: f64,
    /// Purchased lists (skew to large providers).
    pub purchased: f64,
    /// Social lists.
    pub social: f64,
}

/// All mail-layer parameters.
#[derive(Debug, Clone)]
pub struct MailConfig {
    /// Per-class reach into the provider's user base.
    pub reach: ProviderReach,
    /// Probability a *loud*-campaign copy reaching the provider makes
    /// it past baseline filtering into an inbox (loud spam is easy to
    /// filter — §3.2).
    pub loud_inbox_prob: f64,
    /// Same for quiet campaigns (deliverability-optimised).
    pub quiet_inbox_prob: f64,
    /// Probability an inboxed spam copy is reported by its recipient.
    pub report_prob: f64,
    /// Log-normal report delay: median seconds.
    pub report_delay_median_secs: f64,
    /// Log-normal report delay: sigma.
    pub report_delay_sigma: f64,
    /// Until this many copies of a domain have crossed the provider's
    /// servers, its messages inbox at `quiet_inbox_prob` regardless of
    /// campaign style: content-based filters have not learned it yet.
    /// This is what deliverability testing (the warm-up phase)
    /// exploits, and why `Hu` sees fresh domains almost immediately.
    pub filter_volume_threshold: u64,
    /// Until this many copies of a *campaign* have crossed the
    /// provider's servers, the campaign's content is unknown to the
    /// filters. Past it, the style-based inbox rate applies even for
    /// fresh domains — this is what kept the Rustock poisoning (one
    /// gigantic campaign of throwaway domains) out of `Hu`.
    pub campaign_filter_volume_threshold: u64,
    /// Once a domain has been reported this many times, the provider
    /// filters subsequent messages containing it.
    pub filter_threshold: u32,

    /// Post-filter leak probability into inboxes.
    pub filter_leak: f64,

    // ---------------------------------------------- benign pollution
    /// Legitimate (typo / sign-up) messages per day into each MX
    /// honeypot, scaled by the honeypot's address-space size factor.
    pub mx_benign_per_day: f64,
    /// Legitimate messages per day into each honey-account feed.
    pub account_benign_per_day: f64,
    /// Legitimate-newsletter reports per day at the provider (users
    /// flagging mail that is merely unwanted — the `Hu` purity gap).
    pub hu_benign_reports_per_day: f64,
    /// Probability a benign message cites a *previously unseen* small
    /// legitimate domain rather than a popular one.
    pub benign_fresh_domain_prob: f64,

    // ---------------------------------------------- oracle
    /// Day the 5-day incoming-mail measurement starts (§4.2.2).
    pub oracle_start_day: u64,
    /// Oracle window length in days.
    pub oracle_days: u64,
    /// Background legitimate messages per day crossing the provider's
    /// incoming servers that cite benign popular domains (newsletters,
    /// notifications) — what makes Alexa/ODP domains dominate live
    /// volume in Fig 3.
    pub oracle_legit_per_day: f64,
}

impl Default for MailConfig {
    fn default() -> Self {
        MailConfig {
            reach: ProviderReach {
                brute: 0.30,
                harvested: 0.30,
                purchased: 0.45,
                social: 0.45,
            },
            loud_inbox_prob: 0.10,
            quiet_inbox_prob: 0.80,
            report_prob: 0.50,
            report_delay_median_secs: 6.0 * 3600.0,
            report_delay_sigma: 1.4,
            filter_volume_threshold: 25,
            campaign_filter_volume_threshold: 300,
            filter_threshold: 3,
            filter_leak: 0.02,

            mx_benign_per_day: 8.0,
            account_benign_per_day: 3.0,
            hu_benign_reports_per_day: 6.0,
            benign_fresh_domain_prob: 0.35,

            oracle_start_day: 45,
            oracle_days: 5,
            oracle_legit_per_day: 40_000.0,
        }
    }
}

impl MailConfig {
    /// Scales the pollution/oracle volumes alongside an ecosystem
    /// scale factor.
    pub fn with_scale(mut self, factor: f64) -> Self {
        assert!(factor > 0.0);
        let f = factor.sqrt();
        self.mx_benign_per_day *= f;
        self.account_benign_per_day *= f;
        self.hu_benign_reports_per_day *= f;
        self.oracle_legit_per_day *= f;
        self
    }

    /// Validates ranges.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            self.reach.brute,
            self.reach.harvested,
            self.reach.purchased,
            self.reach.social,
            self.loud_inbox_prob,
            self.quiet_inbox_prob,
            self.report_prob,
            self.filter_leak,
            self.benign_fresh_domain_prob,
        ];
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("probability out of [0,1]".into());
        }
        if self.oracle_days == 0 {
            return Err("oracle window must be non-empty".into());
        }
        if self.report_delay_median_secs <= 0.0 || self.report_delay_sigma < 0.0 {
            return Err("invalid report delay law".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        MailConfig::default().validate().unwrap();
    }

    #[test]
    fn scale_shrinks_pollution() {
        let c = MailConfig::default().with_scale(0.25);
        assert!((c.mx_benign_per_day - 4.0).abs() < 1e-9);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_probs() {
        let c = MailConfig {
            report_prob: 1.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = MailConfig {
            oracle_days: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }
}
