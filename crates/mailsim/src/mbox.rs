//! mbox corpus serialization (RFC 4155, `mboxrd` quoting).
//!
//! Spam corpora — the static datasets the paper's related work leans
//! on (Enron, TREC2005, CEAS2008; §2) — ship as mbox files. This
//! module writes and parses the format so simulated feeds can be
//! exported as corpora and re-ingested: `From ` separator lines with
//! envelope sender and date, and reversible `>From` quoting
//! (`mboxrd`).

use taster_sim::SimTime;

/// One message in an mbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MboxMessage {
    /// Envelope sender from the `From ` separator line.
    pub envelope_sender: String,
    /// Delivery timestamp (seconds since scenario epoch; rendered in
    /// the separator line).
    pub time: SimTime,
    /// The message text (headers + body), unquoted.
    pub text: String,
}

/// Errors from [`parse_mbox`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MboxError {
    /// The file did not start with a `From ` line.
    MissingSeparator,
    /// A separator line was malformed; carries the line number.
    BadSeparator(usize),
}

impl std::fmt::Display for MboxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MboxError::MissingSeparator => write!(f, "mbox does not start with a From line"),
            MboxError::BadSeparator(l) => write!(f, "line {l}: malformed From line"),
        }
    }
}

impl std::error::Error for MboxError {}

/// Serialises messages to mbox text (`mboxrd` quoting).
pub fn write_mbox(messages: &[MboxMessage]) -> String {
    let mut out = String::new();
    for m in messages {
        let sender = if m.envelope_sender.is_empty() {
            "MAILER-DAEMON"
        } else {
            &m.envelope_sender
        };
        out.push_str(&format!("From {} @{}\n", sender, m.time.secs()));
        for line in m.text.lines() {
            // mboxrd: quote `From ` and any existing `>+From ` run.
            let trimmed = line.trim_start_matches('>');
            if trimmed.starts_with("From ") {
                out.push('>');
            }
            out.push_str(line);
            out.push('\n');
        }
        out.push('\n');
    }
    out
}

/// Parses mbox text back into messages.
pub fn parse_mbox(text: &str) -> Result<Vec<MboxMessage>, MboxError> {
    let mut messages: Vec<MboxMessage> = Vec::new();
    let mut current: Option<(String, SimTime, Vec<String>)> = None;
    for (lineno, line) in text.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("From ") {
            // Separator: `From <sender> @<secs>`.
            let mut parts = rest.split_whitespace();
            let sender = parts
                .next()
                .ok_or(MboxError::BadSeparator(lineno + 1))?
                .to_string();
            let secs = parts
                .next()
                .and_then(|t| t.strip_prefix('@'))
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or(MboxError::BadSeparator(lineno + 1))?;
            if let Some((s, t, lines)) = current.take() {
                messages.push(finish(s, t, lines));
            }
            let sender = if sender == "MAILER-DAEMON" {
                String::new()
            } else {
                sender
            };
            current = Some((sender, SimTime(secs), Vec::new()));
            continue;
        }
        let Some((_, _, lines)) = current.as_mut() else {
            if line.trim().is_empty() {
                continue; // leading blank lines are tolerated
            }
            return Err(MboxError::MissingSeparator);
        };
        // Undo mboxrd quoting: strip one `>` from `>+From ` runs.
        let unquoted = {
            let stripped = line.trim_start_matches('>');
            if stripped.starts_with("From ") && line.starts_with('>') {
                &line[1..]
            } else {
                line
            }
        };
        lines.push(unquoted.to_string());
    }
    if let Some((s, t, lines)) = current.take() {
        messages.push(finish(s, t, lines));
    }
    Ok(messages)
}

fn finish(sender: String, time: SimTime, mut lines: Vec<String>) -> MboxMessage {
    // Drop the single blank separator line appended by the writer.
    if lines.last().is_some_and(|l| l.is_empty()) {
        lines.pop();
    }
    MboxMessage {
        envelope_sender: sender,
        time,
        text: lines.join("\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(sender: &str, secs: u64, text: &str) -> MboxMessage {
        MboxMessage {
            envelope_sender: sender.to_string(),
            time: SimTime(secs),
            text: text.to_string(),
        }
    }

    #[test]
    fn round_trip_simple() {
        let messages = vec![
            msg("a@b.com", 100, "Subject: one\n\nhello"),
            msg("c@d.org", 2000, "Subject: two\n\nworld"),
        ];
        let text = write_mbox(&messages);
        assert_eq!(parse_mbox(&text).unwrap(), messages);
    }

    #[test]
    fn round_trip_with_from_lines_in_body() {
        let body = "Subject: tricky\n\nFrom the desk of the director\n>From quoted already\nFrom  double space";
        let messages = vec![msg("x@y.com", 7, body)];
        let text = write_mbox(&messages);
        assert!(text.contains(">From the desk"));
        assert!(text.contains(">>From quoted already"));
        assert_eq!(parse_mbox(&text).unwrap(), messages);
    }

    #[test]
    fn null_sender_round_trips() {
        let messages = vec![msg("", 42, "bounce body")];
        let text = write_mbox(&messages);
        assert!(text.starts_with("From MAILER-DAEMON @42\n"));
        assert_eq!(parse_mbox(&text).unwrap(), messages);
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(parse_mbox("not an mbox"), Err(MboxError::MissingSeparator));
        assert_eq!(
            parse_mbox("From justsender\nbody\n"),
            Err(MboxError::BadSeparator(1))
        );
        assert_eq!(
            parse_mbox("From a@b.com @notanum\n"),
            Err(MboxError::BadSeparator(1))
        );
    }

    #[test]
    fn empty_input_is_empty_corpus() {
        assert_eq!(parse_mbox("").unwrap(), Vec::new());
        assert_eq!(parse_mbox("\n\n").unwrap(), Vec::new());
        assert_eq!(write_mbox(&[]), "");
    }

    #[test]
    fn rendered_spam_survives_the_corpus_format() {
        use taster_ecosystem::{EcosystemConfig, GroundTruth};
        use taster_sim::RngStream;
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 137).unwrap();
        let mut rng = RngStream::new(5, "mbox-test");
        let messages: Vec<MboxMessage> = truth
            .sorted_events()
            .iter()
            .take(50)
            .map(|e| {
                let r = crate::render::render_spam(&truth, e.advertised, e.chaff, e.time, &mut rng);
                MboxMessage {
                    envelope_sender: r.from.clone(),
                    time: e.time,
                    // The mbox contract normalises away the trailing
                    // newline (lines are the unit).
                    text: r.text.trim_end_matches('\n').to_string(),
                }
            })
            .collect();
        let corpus = write_mbox(&messages);
        let parsed = parse_mbox(&corpus).unwrap();
        assert_eq!(parsed, messages);
        // Extraction still works on re-ingested text.
        let psl = taster_domain::psl::SuffixList::builtin();
        let urls = taster_domain::url::extract_urls(&parsed[0].text);
        assert!(!urls.is_empty());
        assert!(psl.registered_domain(&urls[0].host).is_some());
    }
}
