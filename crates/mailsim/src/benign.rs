//! Legitimate mail that leaks into spam collectors.
//!
//! No spam source is pure (§3.3). MX honeypots receive mail meant for
//! lexically-similar domains (sender typos — "doppelganger domains")
//! and mail to dummy addresses users invent for sign-up forms
//! (`test.com` syndrome); honey accounts receive username-typo mail.
//! These messages cite ordinary, often Alexa/ODP-listed, domains —
//! they are the benign false positives of Table 2.

use crate::config::MailConfig;
use rand::RngExt;
use taster_domain::DomainId;
use taster_ecosystem::GroundTruth;
use taster_sim::{RngStream, SimTime, DAY};

/// Where a benign message landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BenignDest {
    /// MX honeypot *i* (0 = mx1, 1 = mx2, 2 = mx3).
    MxHoneypot(u8),
    /// Honey-account feed *i* (0 = Ac1, 1 = Ac2).
    HoneyAccounts(u8),
}

/// One legitimate message delivered to a collector's trap.
#[derive(Debug, Clone)]
pub struct BenignMailEvent {
    /// Delivery time.
    pub time: SimTime,
    /// Destination trap.
    pub dest: BenignDest,
    /// Domains cited in the body (1–3).
    pub domains: Vec<DomainId>,
}

/// Generates all benign trap traffic for the scenario.
///
/// Mutates the universe: a configurable fraction of cited domains are
/// *previously unseen* small legitimate sites (interned on first use),
/// which is what gives honeypot feeds their long tail of benign unique
/// domains.
///
/// `mx_size_factor[i]` scales the typo rate of each MX honeypot with
/// its address-space size (a bigger abandoned domain portfolio attracts
/// more stray mail).
pub fn generate_benign_traffic(
    truth: &mut GroundTruth,
    config: &MailConfig,
    mx_size_factor: &[f64; 3],
) -> Vec<BenignMailEvent> {
    let mut rng = RngStream::new(truth.seed, "mailsim/benign");
    let days = truth.config.days;
    let mut out = Vec::new();

    let emit = |dest: BenignDest,
                per_day: f64,
                rng: &mut RngStream,
                truth: &mut GroundTruth,
                out: &mut Vec<BenignMailEvent>| {
        let total = (per_day * days as f64).round() as u64;
        for _ in 0..total {
            let time = SimTime(rng.random_range(0..days * DAY));
            let n = rng.random_range(1..=3usize);
            let mut domains = Vec::with_capacity(n);
            for _ in 0..n {
                let d = if rng.random_bool(config.benign_fresh_domain_prob) {
                    truth.universe.fresh_benign_name(rng)
                } else {
                    truth.universe.sample_benign_uniform(rng)
                };
                domains.push(d);
            }
            out.push(BenignMailEvent {
                time,
                dest,
                domains,
            });
        }
    };

    for (i, factor) in mx_size_factor.iter().enumerate() {
        emit(
            BenignDest::MxHoneypot(i as u8),
            config.mx_benign_per_day * factor,
            &mut rng,
            truth,
            &mut out,
        );
    }
    for i in 0..2u8 {
        emit(
            BenignDest::HoneyAccounts(i),
            config.account_benign_per_day,
            &mut rng,
            truth,
            &mut out,
        );
    }

    out.sort_by_key(|e| e.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::domains::DomainKind;
    use taster_ecosystem::EcosystemConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.05), 23).unwrap()
    }

    #[test]
    fn traffic_is_sorted_and_scaled_by_size() {
        let mut truth = world();
        let cfg = MailConfig::default();
        let events = generate_benign_traffic(&mut truth, &cfg, &[1.0, 4.0, 0.5]);
        assert!(events.windows(2).all(|w| w[0].time <= w[1].time));
        let count = |d: BenignDest| events.iter().filter(|e| e.dest == d).count();
        let mx1 = count(BenignDest::MxHoneypot(0));
        let mx2 = count(BenignDest::MxHoneypot(1));
        let mx3 = count(BenignDest::MxHoneypot(2));
        assert!(mx2 > 2 * mx1, "mx2 {mx2} vs mx1 {mx1}");
        assert!(mx1 > mx3);
        assert!(count(BenignDest::HoneyAccounts(0)) > 0);
        assert!(count(BenignDest::HoneyAccounts(1)) > 0);
    }

    #[test]
    fn cited_domains_are_benign_and_some_are_fresh() {
        let mut truth = world();
        let before = truth.universe.len();
        let cfg = MailConfig::default();
        let events = generate_benign_traffic(&mut truth, &cfg, &[1.0, 1.0, 1.0]);
        assert!(
            truth.universe.len() > before,
            "fresh benign domains interned"
        );
        for e in &events {
            assert!(!e.domains.is_empty() && e.domains.len() <= 3);
            for &d in &e.domains {
                assert_eq!(truth.universe.record(d).kind, DomainKind::Benign);
            }
        }
    }

    #[test]
    fn deterministic() {
        let mk = || {
            let mut truth = world();
            let cfg = MailConfig::default();
            generate_benign_traffic(&mut truth, &cfg, &[1.0, 2.0, 1.0])
                .iter()
                .map(|e| (e.time, e.domains.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
