//! # taster-crawler
//!
//! The web-crawling and content-tagging substrate — the simulated
//! counterpart of the Click Trajectories full-fidelity crawler the
//! paper relied on (§3.4).
//!
//! Given a set of domains collected by the feeds, the crawler:
//!
//! 1. checks **DNS registration** against the zone-file oracle
//!    (Table 2's "DNS" column),
//! 2. issues **HTTP fetches**, following redirect chains through
//!    landing domains to the final storefront (Table 2's "HTTP"),
//! 3. renders the final page and matches it against the **storefront
//!    signature set** of the 45 classified programs (Table 2's
//!    "Tagged"), extracting the embedded affiliate identifier where the
//!    program exposes one (RX-Promotion, Figs 5–6),
//! 4. reports **Alexa/ODP membership** (the negative purity columns).
//!
//! The oracles are deterministic views over ground truth — the
//! simulation's stand-in for the real DNS and web. Signature matching,
//! however, genuinely operates on rendered HTML: a tagging bug would
//! produce wrong tables, not a silently-correct shortcut.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod crawl;
pub mod oracle;
pub mod page;
pub mod tagger;
pub mod zonefile;

pub use crawl::{CrawlReport, CrawlResult, Crawler, Disposition, Tag};
pub use oracle::{DnsOracle, HttpOracle, ListMembership};
pub use tagger::SignatureSet;
pub use zonefile::{ZoneFiles, ZoneRegistry};
