//! DNS, HTTP and list-membership oracles.
//!
//! These are the simulation's interfaces to "the rest of the
//! Internet". Each is a deterministic view over ground truth, shaped
//! like the real resource it stands in for: the DNS oracle is a set of
//! zone files bracketing the measurement period, the HTTP oracle
//! resolves redirect chains to a terminal response, and the list
//! oracle answers Alexa-rank / ODP-listing queries.

use taster_domain::DomainId;
use taster_ecosystem::domains::DomainKind;
use taster_ecosystem::GroundTruth;

/// Zone-file registration oracle.
///
/// The paper checked the com/net/org/biz/us/aero/info zone files from
/// 16 months before to 16 months after the window. The oracle can
/// answer either from ground truth directly or from a parsed
/// [`crate::zonefile::ZoneRegistry`] — the two must agree, and a test
/// asserts they do.
#[derive(Debug, Clone)]
pub struct DnsOracle<'a> {
    truth: &'a GroundTruth,
    registry: Option<crate::zonefile::ZoneRegistry>,
}

impl<'a> DnsOracle<'a> {
    /// Builds the oracle over the generated world (ground-truth bits).
    pub fn new(truth: &'a GroundTruth) -> Self {
        DnsOracle {
            truth,
            registry: None,
        }
    }

    /// Builds the oracle from generated-and-reparsed zone files — the
    /// full artifact path a real study walks.
    pub fn from_zone_files(
        truth: &'a GroundTruth,
    ) -> Result<Self, crate::zonefile::ZoneParseError> {
        let registry = crate::zonefile::ZoneFiles::generate(truth).parse_all()?;
        Ok(DnsOracle {
            truth,
            registry: Some(registry),
        })
    }

    /// Whether `domain` appears in the zone files.
    pub fn registered(&self, domain: DomainId) -> bool {
        match &self.registry {
            Some(reg) => reg.contains(self.truth.universe.table.text(domain)),
            None => self.truth.universe.record(domain).registered,
        }
    }
}

/// Outcome of one HTTP fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchOutcome {
    /// 200-class response from `final_domain` after `hops` redirects.
    Ok {
        /// The domain that served the final page.
        final_domain: DomainId,
        /// Number of redirect hops followed.
        hops: u8,
    },
    /// Connection failure, NXDOMAIN hosting, or non-200 terminal reply.
    Failed,
}

/// HTTP oracle: resolves redirect chains and reports terminal
/// liveness.
#[derive(Debug, Clone, Copy)]
pub struct HttpOracle<'a> {
    truth: &'a GroundTruth,
}

impl<'a> HttpOracle<'a> {
    /// Builds the oracle over the generated world.
    pub fn new(truth: &'a GroundTruth) -> Self {
        HttpOracle { truth }
    }

    /// Fetches `domain`, following redirects like the full-fidelity
    /// crawler (a specially instrumented browser) did.
    ///
    /// A fetch succeeds when the *initial* domain is live (it must
    /// accept the connection to serve a redirect) and the redirect
    /// terminus is live as well.
    pub fn fetch(&self, domain: DomainId) -> FetchOutcome {
        let universe = &self.truth.universe;
        if !universe.record(domain).live {
            return FetchOutcome::Failed;
        }
        let mut hops = 0u8;
        let mut cur = domain;
        while let Some(next) = universe.redirect_target(cur) {
            if next == cur || hops >= 8 {
                break;
            }
            cur = next;
            hops += 1;
        }
        if universe.record(cur).live {
            FetchOutcome::Ok {
                final_domain: cur,
                hops,
            }
        } else {
            FetchOutcome::Failed
        }
    }
}

/// Alexa / Open Directory membership oracle.
#[derive(Debug, Clone, Copy)]
pub struct ListMembership<'a> {
    truth: &'a GroundTruth,
}

impl<'a> ListMembership<'a> {
    /// Builds the oracle.
    pub fn new(truth: &'a GroundTruth) -> Self {
        ListMembership { truth }
    }

    /// Alexa rank (1-based), if the domain is on the top list.
    pub fn alexa_rank(&self, domain: DomainId) -> Option<u32> {
        self.truth.universe.record(domain).alexa_rank
    }

    /// Whether the domain is listed in the Open Directory.
    pub fn odp_listed(&self, domain: DomainId) -> bool {
        self.truth.universe.record(domain).odp
    }

    /// Whether the domain is on either list.
    pub fn benign_listed(&self, domain: DomainId) -> bool {
        self.alexa_rank(domain).is_some() || self.odp_listed(domain)
    }

    /// Whether ground truth says this is a benign-population domain
    /// (used by tests; the analyses use only list membership, like the
    /// paper).
    pub fn is_benign_population(&self, domain: DomainId) -> bool {
        matches!(self.truth.universe.record(domain).kind, DomainKind::Benign)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::domains::DomainKind;
    use taster_ecosystem::EcosystemConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 29).unwrap()
    }

    #[test]
    fn dns_matches_ground_truth() {
        let truth = world();
        let dns = DnsOracle::new(&truth);
        for (id, rec) in truth.universe.iter().take(2000) {
            assert_eq!(dns.registered(id), rec.registered);
        }
    }

    #[test]
    fn fetch_follows_redirects_to_storefront() {
        let truth = world();
        let http = HttpOracle::new(&truth);
        let mut followed = 0;
        for (id, rec) in truth.universe.iter() {
            if rec.kind == DomainKind::Landing && rec.live {
                match http.fetch(id) {
                    FetchOutcome::Ok { final_domain, hops } => {
                        assert!(hops >= 1);
                        assert!(matches!(
                            truth.universe.record(final_domain).kind,
                            DomainKind::Storefront { .. }
                        ));
                        followed += 1;
                    }
                    FetchOutcome::Failed => {
                        // Dead storefront behind a live landing.
                        let t = truth.universe.resolve_final(id);
                        assert!(!truth.universe.record(t).live);
                    }
                }
            }
        }
        assert!(followed > 0, "some landing chains resolve");
    }

    #[test]
    fn dead_domains_fail() {
        let truth = world();
        let http = HttpOracle::new(&truth);
        let dead = truth
            .universe
            .iter()
            .find(|(_, r)| !r.live)
            .expect("some dead domain exists")
            .0;
        assert_eq!(http.fetch(dead), FetchOutcome::Failed);
    }

    #[test]
    fn list_membership_reflects_records() {
        let truth = world();
        let lists = ListMembership::new(&truth);
        let mut alexa = 0;
        let mut odp = 0;
        for (id, rec) in truth.universe.iter() {
            assert_eq!(lists.alexa_rank(id), rec.alexa_rank);
            assert_eq!(lists.odp_listed(id), rec.odp);
            if lists.alexa_rank(id).is_some() {
                alexa += 1;
                assert!(lists.benign_listed(id));
            }
            if rec.odp {
                odp += 1;
            }
        }
        assert!(alexa > 0 && odp > 0);
    }
}
