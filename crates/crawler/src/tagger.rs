//! Storefront signature matching.
//!
//! The Click Trajectories team identified storefronts with a set of
//! hand-generated content signatures (§3.4). We compile one signature
//! per *tagged* program — the `generator` branding its pages carry —
//! plus an extractor for RX-Promotion's embedded affiliate identifier.
//! Matching operates on rendered HTML text, not on ground-truth
//! records, so the pipeline is honest end-to-end.

use taster_domain::fx::FxHashMap;
use taster_ecosystem::ids::{AffiliateId, ProgramId};
use taster_ecosystem::program::ProgramRoster;

/// A compiled signature set over the tagged programs.
#[derive(Debug, Clone)]
pub struct SignatureSet {
    /// Signature text → program. Signatures key on the program's page
    /// branding (its `generator` meta content).
    by_marker: FxHashMap<String, ProgramId>,
}

impl SignatureSet {
    /// Compiles signatures for every *tagged* program in the roster.
    pub fn from_roster(roster: &ProgramRoster) -> SignatureSet {
        let by_marker = roster
            .programs
            .iter()
            .filter(|p| p.tagged)
            .map(|p| (format!("content=\"{}\"", p.name), p.id))
            .collect();
        SignatureSet { by_marker }
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.by_marker.len()
    }

    /// True when no signatures are compiled.
    pub fn is_empty(&self) -> bool {
        self.by_marker.is_empty()
    }

    /// Matches a rendered page against all signatures.
    pub fn match_page(&self, html: &str) -> Option<ProgramId> {
        // Signature sets are small (45); a linear scan over markers is
        // exactly what the original hand-written classifiers did.
        self.by_marker
            .iter()
            .find(|(marker, _)| html.contains(marker.as_str()))
            .map(|(_, &p)| p)
    }
}

/// Extracts an RX-Promotion-style embedded affiliate identifier from a
/// page, if present: `<meta name="affid" content="NNN">`.
pub fn extract_affiliate_id(html: &str) -> Option<AffiliateId> {
    let at = html.find("name=\"affid\"")?;
    let rest = &html[at..];
    let content = rest.find("content=\"")?;
    let value_start = at + content + "content=\"".len();
    let tail = &html[value_start..];
    let end = tail.find('"')?;
    tail[..end].parse::<u32>().ok().map(AffiliateId)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};

    fn roster() -> ProgramRoster {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 3)
            .unwrap()
            .roster
    }

    #[test]
    fn one_signature_per_tagged_program() {
        let r = roster();
        let sigs = SignatureSet::from_roster(&r);
        assert_eq!(sigs.len(), r.tagged_programs().count());
        assert!(!sigs.is_empty());
    }

    #[test]
    fn matches_only_its_program() {
        let r = roster();
        let sigs = SignatureSet::from_roster(&r);
        let page = "<meta name=\"generator\" content=\"RX-Promotion\">";
        assert_eq!(
            sigs.match_page(page),
            Some(taster_ecosystem::program::RX_PROGRAM)
        );
        assert_eq!(sigs.match_page("<html>a casino page</html>"), None);
    }

    #[test]
    fn untagged_programs_never_match() {
        let r = roster();
        let sigs = SignatureSet::from_roster(&r);
        for p in r.programs.iter().filter(|p| !p.tagged) {
            let page = format!("<meta name=\"generator\" content=\"{}\">", p.name);
            assert_eq!(sigs.match_page(&page), None, "{}", p.name);
        }
    }

    #[test]
    fn affiliate_extraction() {
        let html = "<head><meta name=\"affid\" content=\"846\"></head>";
        assert_eq!(extract_affiliate_id(html), Some(AffiliateId(846)));
        assert_eq!(extract_affiliate_id("<head></head>"), None);
        assert_eq!(
            extract_affiliate_id("<meta name=\"affid\" content=\"oops\">"),
            None
        );
        // Unterminated content attribute.
        assert_eq!(
            extract_affiliate_id("<meta name=\"affid\" content=\"12"),
            None
        );
    }
}
