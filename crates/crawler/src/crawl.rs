//! The crawl pipeline: DNS + HTTP + tagging for a set of domains.

use crate::oracle::{DnsOracle, FetchOutcome, HttpOracle, ListMembership};
use crate::page::render_page;
use crate::tagger::{extract_affiliate_id, SignatureSet};
use taster_domain::{DomainBitset, DomainId, RankIndex};
use taster_ecosystem::ids::{AffiliateId, ProgramId};
use taster_ecosystem::GroundTruth;
use taster_sim::Parallelism;

/// A storefront classification produced by signature matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    /// The matched program.
    pub program: ProgramId,
    /// The embedded affiliate identifier, when the program exposes one.
    pub affiliate: Option<AffiliateId>,
}

/// Everything the crawler learned about one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlResult {
    /// Present in the zone files.
    pub registered: bool,
    /// At least one URL fetch returned 200.
    pub http_ok: bool,
    /// Terminal domain of the redirect chain (self when no redirect).
    pub final_domain: DomainId,
    /// Storefront classification, if the final page matched.
    pub tag: Option<Tag>,
    /// Alexa top-list rank.
    pub alexa_rank: Option<u32>,
    /// Listed in the Open Directory.
    pub odp: bool,
}

impl CrawlResult {
    /// The paper's *live* predicate **before** benign-list exclusion.
    pub fn responded(&self) -> bool {
        self.http_ok
    }

    /// On either benign list (Alexa/ODP).
    pub fn benign_listed(&self) -> bool {
        self.alexa_rank.is_some() || self.odp
    }

    /// The paper's *live domain* definition (§4.1.4): HTTP-responsive
    /// and not on the Alexa/ODP lists.
    pub fn is_live(&self) -> bool {
        self.http_ok && !self.benign_listed()
    }

    /// The paper's *tagged domain* definition: leads to a classified
    /// storefront and not on the benign lists.
    pub fn is_tagged(&self) -> bool {
        self.tag.is_some() && !self.benign_listed()
    }
}

/// A completed crawl over a set of domains.
///
/// Stored columnar: sorted domain ids, a parallel result column, a
/// membership bitset + rank index for O(1) `get`, and one indicator
/// bitset per classification predicate so the analyses can answer
/// "how many of this feed's domains are live/tagged/listed" with
/// word-level intersection counts instead of per-domain probes.
#[derive(Debug, Clone, Default)]
pub struct CrawlReport {
    ids: Vec<DomainId>,
    results: Vec<CrawlResult>,
    members: DomainBitset,
    rank: RankIndex,
    registered: DomainBitset,
    http_ok: DomainBitset,
    tagged_page: DomainBitset,
    odp: DomainBitset,
    alexa: DomainBitset,
    live: DomainBitset,
    storefront: DomainBitset,
    benign_http: DomainBitset,
}

impl CrawlReport {
    /// Builds from `(domain, result)` rows sorted ascending by domain
    /// with no duplicates.
    fn from_rows(rows: Vec<(DomainId, CrawlResult)>) -> CrawlReport {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows sorted unique"
        );
        let capacity = rows.last().map_or(0, |&(d, _)| d.index() + 1);
        let mut report = CrawlReport {
            ids: Vec::with_capacity(rows.len()),
            results: Vec::with_capacity(rows.len()),
            members: DomainBitset::with_capacity(capacity),
            rank: RankIndex::default(),
            registered: DomainBitset::with_capacity(capacity),
            http_ok: DomainBitset::with_capacity(capacity),
            tagged_page: DomainBitset::with_capacity(capacity),
            odp: DomainBitset::with_capacity(capacity),
            alexa: DomainBitset::with_capacity(capacity),
            live: DomainBitset::with_capacity(capacity),
            storefront: DomainBitset::with_capacity(capacity),
            benign_http: DomainBitset::with_capacity(capacity),
        };
        for (d, r) in rows {
            report.members.insert(d);
            if r.registered {
                report.registered.insert(d);
            }
            if r.http_ok {
                report.http_ok.insert(d);
            }
            if r.tag.is_some() {
                report.tagged_page.insert(d);
            }
            if r.odp {
                report.odp.insert(d);
            }
            if r.alexa_rank.is_some() {
                report.alexa.insert(d);
            }
            if r.is_live() {
                report.live.insert(d);
            }
            if r.is_tagged() {
                report.storefront.insert(d);
            }
            if r.http_ok && r.benign_listed() {
                report.benign_http.insert(d);
            }
            report.ids.push(d);
            report.results.push(r);
        }
        report.rank = RankIndex::build(&report.members);
        report
    }

    /// Result for one domain, if it was crawled.
    pub fn get(&self, domain: DomainId) -> Option<&CrawlResult> {
        self.rank
            .rank(&self.members, domain)
            .map(|i| &self.results[i])
    }

    /// Number of crawled domains.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing was crawled.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(domain, result)` in ascending domain order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &CrawlResult)> {
        self.ids.iter().copied().zip(self.results.iter())
    }

    /// Every crawled domain.
    pub fn members(&self) -> &DomainBitset {
        &self.members
    }

    /// Domains present in the zone files.
    pub fn registered_set(&self) -> &DomainBitset {
        &self.registered
    }

    /// Domains with at least one 200 response.
    pub fn http_ok_set(&self) -> &DomainBitset {
        &self.http_ok
    }

    /// Domains whose final page matched a storefront signature
    /// (before benign-list exclusion).
    pub fn tagged_page_set(&self) -> &DomainBitset {
        &self.tagged_page
    }

    /// Domains in the Open Directory.
    pub fn odp_set(&self) -> &DomainBitset {
        &self.odp
    }

    /// Domains with an Alexa rank.
    pub fn alexa_set(&self) -> &DomainBitset {
        &self.alexa
    }

    /// [`CrawlResult::is_live`] domains.
    pub fn live_set(&self) -> &DomainBitset {
        &self.live
    }

    /// [`CrawlResult::is_tagged`] domains.
    pub fn storefront_set(&self) -> &DomainBitset {
        &self.storefront
    }

    /// HTTP-responsive domains on a benign list (the mass excluded
    /// from *live*, analysed in Fig 3).
    pub fn benign_http_set(&self) -> &DomainBitset {
        &self.benign_http
    }
}

/// The crawler: wraps the oracles and signature set.
#[derive(Debug, Clone)]
pub struct Crawler<'a> {
    truth: &'a GroundTruth,
    dns: DnsOracle<'a>,
    http: HttpOracle<'a>,
    lists: ListMembership<'a>,
    signatures: SignatureSet,
}

impl<'a> Crawler<'a> {
    /// Builds a crawler (compiles the signature set from the roster).
    pub fn new(truth: &'a GroundTruth) -> Crawler<'a> {
        Crawler {
            truth,
            dns: DnsOracle::new(truth),
            http: HttpOracle::new(truth),
            lists: ListMembership::new(truth),
            signatures: SignatureSet::from_roster(&truth.roster),
        }
    }

    /// Crawls one domain.
    pub fn crawl_one(&self, domain: DomainId) -> CrawlResult {
        let registered = self.dns.registered(domain);
        let (http_ok, final_domain) = match self.http.fetch(domain) {
            FetchOutcome::Ok { final_domain, .. } => (true, final_domain),
            FetchOutcome::Failed => (false, domain),
        };
        let tag = if http_ok {
            render_page(self.truth, final_domain).and_then(|html| {
                self.signatures.match_page(&html).map(|program| Tag {
                    program,
                    affiliate: extract_affiliate_id(&html),
                })
            })
        } else {
            None
        };
        CrawlResult {
            registered,
            http_ok,
            final_domain,
            tag,
            alexa_rank: self.lists.alexa_rank(domain),
            odp: self.lists.odp_listed(domain),
        }
    }

    /// Crawls a deduplicated set of domains.
    pub fn crawl<I: IntoIterator<Item = DomainId>>(&self, domains: I) -> CrawlReport {
        let unique: DomainBitset = domains.into_iter().collect();
        CrawlReport::from_rows(unique.iter().map(|d| (d, self.crawl_one(d))).collect())
    }

    /// [`Crawler::crawl`] sharded across `par` workers.
    ///
    /// The domain set is deduplicated into a bitset (which yields ids
    /// sorted ascending) and split into contiguous near-equal shards;
    /// each worker crawls one shard. [`Crawler::crawl_one`] is a pure
    /// function of the domain (the oracles draw nothing from shared
    /// mutable state), so the report is bit-identical to a serial
    /// crawl at any worker count.
    pub fn crawl_par<I: IntoIterator<Item = DomainId>>(
        &self,
        domains: I,
        par: &Parallelism,
    ) -> CrawlReport {
        let unique: DomainBitset = domains.into_iter().collect();
        let unique: Vec<DomainId> = unique.iter().collect();
        let chunk = unique.len().div_ceil(par.workers()).max(1);
        let shards: Vec<&[DomainId]> = unique.chunks(chunk).collect();
        let results = par.par_map(shards, |shard| {
            shard
                .iter()
                .map(|&d| (d, self.crawl_one(d)))
                .collect::<Vec<_>>()
        });
        CrawlReport::from_rows(results.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::domains::DomainKind;
    use taster_ecosystem::program::RX_PROGRAM;
    use taster_ecosystem::EcosystemConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 37).unwrap()
    }

    #[test]
    fn storefronts_of_tagged_programs_get_tagged() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let mut tagged = 0;
        let mut untagged_live = 0;
        for (id, rec) in truth.universe.iter() {
            if let DomainKind::Storefront { program, affiliate } = rec.kind {
                let r = crawler.crawl_one(id);
                if !rec.live {
                    assert!(!r.http_ok);
                    continue;
                }
                let is_tagged_prog = truth.roster.program(program).tagged;
                match r.tag {
                    Some(tag) => {
                        assert!(is_tagged_prog);
                        assert_eq!(tag.program, program);
                        if program == RX_PROGRAM {
                            assert_eq!(tag.affiliate, Some(affiliate));
                        } else {
                            assert_eq!(tag.affiliate, None);
                        }
                        tagged += 1;
                    }
                    None => {
                        assert!(!is_tagged_prog, "tagged program page missed");
                        untagged_live += 1;
                    }
                }
            }
        }
        assert!(tagged > 0 && untagged_live > 0);
    }

    #[test]
    fn landing_domains_tag_through_redirects() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let mut via_landing = 0;
        for (id, rec) in truth.universe.iter() {
            if rec.kind == DomainKind::Landing {
                let r = crawler.crawl_one(id);
                if r.http_ok {
                    assert_ne!(r.final_domain, id);
                    if r.tag.is_some() {
                        via_landing += 1;
                    }
                }
            }
        }
        assert!(via_landing > 0, "redirect-resolved tags exist");
    }

    #[test]
    fn poison_is_dead_and_untagged() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let mut poison_seen = 0;
        let mut poison_ok = 0;
        for (id, rec) in truth.universe.iter() {
            if rec.kind == DomainKind::Poison {
                poison_seen += 1;
                let r = crawler.crawl_one(id);
                assert!(r.tag.is_none());
                if r.http_ok {
                    poison_ok += 1;
                }
            }
        }
        assert!(poison_seen > 100);
        assert!(
            (poison_ok as f64) < poison_seen as f64 * 0.01,
            "{poison_ok}/{poison_seen} poison responding"
        );
    }

    #[test]
    fn live_and_tagged_exclude_benign_lists() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        // Pick an uncompromised listed benign domain (a compromised
        // one may redirect to a dead storefront and legitimately fail).
        let (benign_id, _) = truth
            .universe
            .iter()
            .find(|(id, r)| {
                r.kind == DomainKind::Benign
                    && r.alexa_rank.is_some()
                    && truth.universe.redirect_target(*id).is_none()
            })
            .unwrap();
        let r = crawler.crawl_one(benign_id);
        assert!(r.http_ok);
        assert!(r.benign_listed());
        assert!(!r.is_live(), "Alexa-listed domain is excluded from live");
        assert!(!r.is_tagged());
    }

    #[test]
    fn sharded_crawl_is_bit_identical_to_serial() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let ids: Vec<DomainId> = truth.universe.iter().map(|(d, _)| d).collect();
        let serial = crawler.crawl(ids.iter().copied());
        for workers in [1, 2, 8] {
            let par = crawler.crawl_par(ids.iter().copied(), &Parallelism::fixed(workers));
            assert_eq!(par.len(), serial.len());
            for (d, r) in serial.iter() {
                assert_eq!(par.get(d), Some(r), "{d:?}");
            }
        }
    }

    #[test]
    fn crawl_set_deduplicates() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let ids: Vec<DomainId> = truth.universe.iter().take(50).map(|(d, _)| d).collect();
        let doubled: Vec<DomainId> = ids.iter().chain(ids.iter()).copied().collect();
        let report = crawler.crawl(doubled);
        assert_eq!(report.len(), 50);
        assert!(report.get(ids[0]).is_some());
    }
}
