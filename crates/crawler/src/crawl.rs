//! The crawl pipeline: DNS + HTTP + tagging for a set of domains.

use crate::oracle::{DnsOracle, FetchOutcome, HttpOracle, ListMembership};
use crate::page::render_page;
use crate::tagger::{extract_affiliate_id, SignatureSet};
use rand::RngExt;
use taster_domain::{DomainBitset, DomainId, RankIndex};
use taster_ecosystem::ids::{AffiliateId, ProgramId};
use taster_ecosystem::GroundTruth;
use taster_sim::{FaultPlan, Obs, Parallelism};

/// Bucket edges for the crawl attempts-per-domain histogram (1 = no
/// retries; the flaky profiles allow a handful of extra visits).
const ATTEMPTS_BOUNDS: [u64; 5] = [1, 2, 3, 5, 8];

/// A storefront classification produced by signature matching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tag {
    /// The matched program.
    pub program: ProgramId,
    /// The embedded affiliate identifier, when the program exposes one.
    pub affiliate: Option<AffiliateId>,
}

/// How a domain's crawl terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Disposition {
    /// The visit completed (whether or not the page responded).
    #[default]
    Ok,
    /// Every HTTP attempt timed out; retries exhausted.
    Timeout,
    /// Every DNS attempt returned SERVFAIL; retries exhausted.
    Unreachable,
}

/// Everything the crawler learned about one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrawlResult {
    /// Present in the zone files.
    pub registered: bool,
    /// At least one URL fetch returned 200.
    pub http_ok: bool,
    /// Terminal domain of the redirect chain (self when no redirect).
    pub final_domain: DomainId,
    /// Storefront classification, if the final page matched.
    pub tag: Option<Tag>,
    /// Alexa top-list rank.
    pub alexa_rank: Option<u32>,
    /// Listed in the Open Directory.
    pub odp: bool,
    /// How the visit terminated (always [`Disposition::Ok`] without
    /// fault injection).
    pub disposition: Disposition,
    /// Visits spent on this domain (1 + retries consumed).
    pub attempts: u32,
    /// Simulated backoff time spent between retries, in seconds.
    pub backoff_secs: u64,
}

impl CrawlResult {
    /// The paper's *live* predicate **before** benign-list exclusion.
    pub fn responded(&self) -> bool {
        self.http_ok
    }

    /// On either benign list (Alexa/ODP).
    pub fn benign_listed(&self) -> bool {
        self.alexa_rank.is_some() || self.odp
    }

    /// The paper's *live domain* definition (§4.1.4): HTTP-responsive
    /// and not on the Alexa/ODP lists.
    pub fn is_live(&self) -> bool {
        self.http_ok && !self.benign_listed()
    }

    /// The paper's *tagged domain* definition: leads to a classified
    /// storefront and not on the benign lists.
    pub fn is_tagged(&self) -> bool {
        self.tag.is_some() && !self.benign_listed()
    }
}

/// A completed crawl over a set of domains.
///
/// Stored columnar: sorted domain ids, a parallel result column, a
/// membership bitset + rank index for O(1) `get`, and one indicator
/// bitset per classification predicate so the analyses can answer
/// "how many of this feed's domains are live/tagged/listed" with
/// word-level intersection counts instead of per-domain probes.
#[derive(Debug, Clone, Default)]
pub struct CrawlReport {
    ids: Vec<DomainId>,
    results: Vec<CrawlResult>,
    members: DomainBitset,
    rank: RankIndex,
    registered: DomainBitset,
    http_ok: DomainBitset,
    tagged_page: DomainBitset,
    odp: DomainBitset,
    alexa: DomainBitset,
    live: DomainBitset,
    storefront: DomainBitset,
    benign_http: DomainBitset,
    timeouts: usize,
    unreachable: usize,
    total_attempts: u64,
    total_backoff_secs: u64,
}

impl CrawlReport {
    /// Builds from `(domain, result)` rows sorted ascending by domain
    /// with no duplicates.
    fn from_rows(rows: Vec<(DomainId, CrawlResult)>) -> CrawlReport {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows sorted unique"
        );
        let capacity = rows.last().map_or(0, |&(d, _)| d.index() + 1);
        let mut report = CrawlReport {
            ids: Vec::with_capacity(rows.len()),
            results: Vec::with_capacity(rows.len()),
            members: DomainBitset::with_capacity(capacity),
            rank: RankIndex::default(),
            registered: DomainBitset::with_capacity(capacity),
            http_ok: DomainBitset::with_capacity(capacity),
            tagged_page: DomainBitset::with_capacity(capacity),
            odp: DomainBitset::with_capacity(capacity),
            alexa: DomainBitset::with_capacity(capacity),
            live: DomainBitset::with_capacity(capacity),
            storefront: DomainBitset::with_capacity(capacity),
            benign_http: DomainBitset::with_capacity(capacity),
            timeouts: 0,
            unreachable: 0,
            total_attempts: 0,
            total_backoff_secs: 0,
        };
        for (d, r) in rows {
            match r.disposition {
                Disposition::Ok => {}
                Disposition::Timeout => report.timeouts += 1,
                Disposition::Unreachable => report.unreachable += 1,
            }
            report.total_attempts += u64::from(r.attempts);
            report.total_backoff_secs += r.backoff_secs;
            report.members.insert(d);
            if r.registered {
                report.registered.insert(d);
            }
            if r.http_ok {
                report.http_ok.insert(d);
            }
            if r.tag.is_some() {
                report.tagged_page.insert(d);
            }
            if r.odp {
                report.odp.insert(d);
            }
            if r.alexa_rank.is_some() {
                report.alexa.insert(d);
            }
            if r.is_live() {
                report.live.insert(d);
            }
            if r.is_tagged() {
                report.storefront.insert(d);
            }
            if r.http_ok && r.benign_listed() {
                report.benign_http.insert(d);
            }
            report.ids.push(d);
            report.results.push(r);
        }
        report.rank = RankIndex::build(&report.members);
        report
    }

    /// Result for one domain, if it was crawled.
    pub fn get(&self, domain: DomainId) -> Option<&CrawlResult> {
        self.rank
            .rank(&self.members, domain)
            .map(|i| &self.results[i])
    }

    /// Number of crawled domains.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when nothing was crawled.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(domain, result)` in ascending domain order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &CrawlResult)> {
        self.ids.iter().copied().zip(self.results.iter())
    }

    /// Every crawled domain.
    pub fn members(&self) -> &DomainBitset {
        &self.members
    }

    /// Domains present in the zone files.
    pub fn registered_set(&self) -> &DomainBitset {
        &self.registered
    }

    /// Domains with at least one 200 response.
    pub fn http_ok_set(&self) -> &DomainBitset {
        &self.http_ok
    }

    /// Domains whose final page matched a storefront signature
    /// (before benign-list exclusion).
    pub fn tagged_page_set(&self) -> &DomainBitset {
        &self.tagged_page
    }

    /// Domains in the Open Directory.
    pub fn odp_set(&self) -> &DomainBitset {
        &self.odp
    }

    /// Domains with an Alexa rank.
    pub fn alexa_set(&self) -> &DomainBitset {
        &self.alexa
    }

    /// [`CrawlResult::is_live`] domains.
    pub fn live_set(&self) -> &DomainBitset {
        &self.live
    }

    /// [`CrawlResult::is_tagged`] domains.
    pub fn storefront_set(&self) -> &DomainBitset {
        &self.storefront
    }

    /// HTTP-responsive domains on a benign list (the mass excluded
    /// from *live*, analysed in Fig 3).
    pub fn benign_http_set(&self) -> &DomainBitset {
        &self.benign_http
    }

    /// Domains whose crawl ended in [`Disposition::Timeout`].
    pub fn timeouts(&self) -> usize {
        self.timeouts
    }

    /// Domains whose crawl ended in [`Disposition::Unreachable`].
    pub fn unreachable(&self) -> usize {
        self.unreachable
    }

    /// Total visits spent across all domains (per-domain attempt
    /// accounting summed).
    pub fn total_attempts(&self) -> u64 {
        self.total_attempts
    }

    /// Total simulated backoff time spent between retries, in seconds.
    pub fn total_backoff_secs(&self) -> u64 {
        self.total_backoff_secs
    }
}

/// The crawler: wraps the oracles and signature set.
#[derive(Debug, Clone)]
pub struct Crawler<'a> {
    truth: &'a GroundTruth,
    dns: DnsOracle<'a>,
    http: HttpOracle<'a>,
    lists: ListMembership<'a>,
    signatures: SignatureSet,
    faults: Option<FaultPlan>,
    /// Precomputed `fault/crawl/{dns,http}` stream keys: the faulted
    /// crawl derives one decision stream per domain per stage, and
    /// hashing the stage name once here (instead of per domain) keeps
    /// that path allocation-free.
    dns_fault_key: u64,
    http_fault_key: u64,
}

impl<'a> Crawler<'a> {
    /// Builds a crawler (compiles the signature set from the roster).
    pub fn new(truth: &'a GroundTruth) -> Crawler<'a> {
        Crawler {
            truth,
            dns: DnsOracle::new(truth),
            http: HttpOracle::new(truth),
            lists: ListMembership::new(truth),
            signatures: SignatureSet::from_roster(&truth.roster),
            faults: None,
            dns_fault_key: FaultPlan::fault_key("crawl/dns"),
            http_fault_key: FaultPlan::fault_key("crawl/http"),
        }
    }

    /// Builds a crawler whose DNS/HTTP visits can fail according to
    /// `plan` (transient SERVFAILs and timeouts with bounded retries).
    /// An off plan is equivalent to [`Crawler::new`].
    pub fn with_faults(truth: &'a GroundTruth, plan: FaultPlan) -> Crawler<'a> {
        let mut crawler = Crawler::new(truth);
        if !plan.is_off() {
            crawler.faults = Some(plan);
        }
        crawler
    }

    /// Retries `stage` visits for `domain` until one succeeds or the
    /// retry budget runs out. Returns `(survived, extra_attempts,
    /// backoff_secs)`. Decisions draw from a fresh stream keyed by
    /// `(seed, crawl/<stage>, domain index)`, so the outcome is a pure
    /// function of the domain — independent of shard boundaries — and
    /// backoff is deterministic simulated time (base doubling per
    /// retry), not wall-clock sleeping.
    fn visit_with_retries(
        plan: &FaultPlan,
        stage_key: u64,
        domain: DomainId,
        fail_prob: f64,
    ) -> (bool, u32, u64) {
        if fail_prob <= 0.0 {
            return (true, 0, 0);
        }
        let profile = plan.profile();
        let mut rng = plan.stream_keyed(stage_key, domain.index() as u64);
        let mut extra_attempts = 0u32;
        let mut backoff_secs = 0u64;
        for attempt in 0..=profile.crawl_max_retries {
            if attempt > 0 {
                extra_attempts += 1;
                backoff_secs += profile.crawl_backoff_secs << (attempt - 1);
            }
            if !rng.random_bool(fail_prob) {
                return (true, extra_attempts, backoff_secs);
            }
        }
        (false, extra_attempts, backoff_secs)
    }

    /// Crawls one domain.
    ///
    /// A pure function of the domain (the oracles and the fault plan
    /// draw nothing from shared mutable state), which is what keeps
    /// sharded crawls bit-identical to serial ones.
    pub fn crawl_one(&self, domain: DomainId) -> CrawlResult {
        let mut attempts = 1u32;
        let mut backoff_secs = 0u64;
        if let Some(plan) = &self.faults {
            // DNS resolution first: a domain whose every lookup
            // SERVFAILs is terminally unreachable — no HTTP fetch, no
            // registration answer, no silent success.
            let (resolved, extra, backoff) = Self::visit_with_retries(
                plan,
                self.dns_fault_key,
                domain,
                plan.profile().dns_servfail_prob,
            );
            attempts += extra;
            backoff_secs += backoff;
            if !resolved {
                return CrawlResult {
                    registered: false,
                    http_ok: false,
                    final_domain: domain,
                    tag: None,
                    alexa_rank: self.lists.alexa_rank(domain),
                    odp: self.lists.odp_listed(domain),
                    disposition: Disposition::Unreachable,
                    attempts,
                    backoff_secs,
                };
            }
        }
        let registered = self.dns.registered(domain);
        if let Some(plan) = &self.faults {
            let (responded, extra, backoff) = Self::visit_with_retries(
                plan,
                self.http_fault_key,
                domain,
                plan.profile().http_timeout_prob,
            );
            attempts += extra;
            backoff_secs += backoff;
            if !responded {
                return CrawlResult {
                    registered,
                    http_ok: false,
                    final_domain: domain,
                    tag: None,
                    alexa_rank: self.lists.alexa_rank(domain),
                    odp: self.lists.odp_listed(domain),
                    disposition: Disposition::Timeout,
                    attempts,
                    backoff_secs,
                };
            }
        }
        let (http_ok, final_domain) = match self.http.fetch(domain) {
            FetchOutcome::Ok { final_domain, .. } => (true, final_domain),
            FetchOutcome::Failed => (false, domain),
        };
        let tag = if http_ok {
            render_page(self.truth, final_domain).and_then(|html| {
                self.signatures.match_page(&html).map(|program| Tag {
                    program,
                    affiliate: extract_affiliate_id(&html),
                })
            })
        } else {
            None
        };
        CrawlResult {
            registered,
            http_ok,
            final_domain,
            tag,
            alexa_rank: self.lists.alexa_rank(domain),
            odp: self.lists.odp_listed(domain),
            disposition: Disposition::Ok,
            attempts,
            backoff_secs,
        }
    }

    /// Crawls a deduplicated set of domains.
    pub fn crawl<I: IntoIterator<Item = DomainId>>(&self, domains: I) -> CrawlReport {
        let unique: DomainBitset = domains.into_iter().collect();
        CrawlReport::from_rows(unique.iter().map(|d| (d, self.crawl_one(d))).collect())
    }

    /// [`Crawler::crawl`] sharded across `par` workers.
    ///
    /// The domain set is deduplicated into a bitset (which yields ids
    /// sorted ascending) and split into contiguous near-equal shards;
    /// each worker crawls one shard. [`Crawler::crawl_one`] is a pure
    /// function of the domain (the oracles draw nothing from shared
    /// mutable state), so the report is bit-identical to a serial
    /// crawl at any worker count.
    pub fn crawl_par<I: IntoIterator<Item = DomainId>>(
        &self,
        domains: I,
        par: &Parallelism,
    ) -> CrawlReport {
        let unique: DomainBitset = domains.into_iter().collect();
        let unique: Vec<DomainId> = unique.iter().collect();
        let chunk = unique.len().div_ceil(par.workers()).max(1);
        let shards: Vec<&[DomainId]> = unique.chunks(chunk).collect();
        let results = par.par_map(shards, |shard| {
            shard
                .iter()
                .map(|&d| (d, self.crawl_one(d)))
                .collect::<Vec<_>>()
        });
        CrawlReport::from_rows(results.into_iter().flatten().collect())
    }

    /// [`Crawler::crawl_par`] with observability: wraps the crawl in a
    /// `crawl` span and derives disposition counters and the
    /// attempts-per-domain histogram from the merged report, so the
    /// sharded hot path is untouched and the metrics are trivially
    /// identical at any worker count.
    pub fn crawl_par_observed<I: IntoIterator<Item = DomainId>>(
        &self,
        domains: I,
        par: &Parallelism,
        obs: &Obs,
    ) -> CrawlReport {
        let mut span = obs.span("crawl");
        let report = self.crawl_par(domains, par);
        span.attr_u64("domains", report.len() as u64);
        if obs.metrics.is_on() {
            let m = &obs.metrics;
            m.add("crawl/domains", report.len() as u64);
            m.add("crawl/registered", report.registered_set().len() as u64);
            m.add("crawl/http_ok", report.http_ok_set().len() as u64);
            m.add("crawl/tagged_pages", report.tagged_page_set().len() as u64);
            m.add("crawl/live", report.live_set().len() as u64);
            m.add("crawl/timeouts", report.timeouts() as u64);
            m.add("crawl/unreachable", report.unreachable() as u64);
            m.add("crawl/attempts", report.total_attempts());
            m.add("crawl/backoff_secs", report.total_backoff_secs());
            let mut shard = taster_sim::MetricsShard::new();
            for (_, r) in report.iter() {
                shard.observe(
                    "crawl/attempts_per_domain",
                    &ATTEMPTS_BOUNDS,
                    u64::from(r.attempts),
                );
            }
            m.absorb(&shard);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::domains::DomainKind;
    use taster_ecosystem::program::RX_PROGRAM;
    use taster_ecosystem::EcosystemConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 37).unwrap()
    }

    #[test]
    fn storefronts_of_tagged_programs_get_tagged() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let mut tagged = 0;
        let mut untagged_live = 0;
        for (id, rec) in truth.universe.iter() {
            if let DomainKind::Storefront { program, affiliate } = rec.kind {
                let r = crawler.crawl_one(id);
                if !rec.live {
                    assert!(!r.http_ok);
                    continue;
                }
                let is_tagged_prog = truth.roster.program(program).tagged;
                match r.tag {
                    Some(tag) => {
                        assert!(is_tagged_prog);
                        assert_eq!(tag.program, program);
                        if program == RX_PROGRAM {
                            assert_eq!(tag.affiliate, Some(affiliate));
                        } else {
                            assert_eq!(tag.affiliate, None);
                        }
                        tagged += 1;
                    }
                    None => {
                        assert!(!is_tagged_prog, "tagged program page missed");
                        untagged_live += 1;
                    }
                }
            }
        }
        assert!(tagged > 0 && untagged_live > 0);
    }

    #[test]
    fn landing_domains_tag_through_redirects() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let mut via_landing = 0;
        for (id, rec) in truth.universe.iter() {
            if rec.kind == DomainKind::Landing {
                let r = crawler.crawl_one(id);
                if r.http_ok {
                    assert_ne!(r.final_domain, id);
                    if r.tag.is_some() {
                        via_landing += 1;
                    }
                }
            }
        }
        assert!(via_landing > 0, "redirect-resolved tags exist");
    }

    #[test]
    fn poison_is_dead_and_untagged() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let mut poison_seen = 0;
        let mut poison_ok = 0;
        for (id, rec) in truth.universe.iter() {
            if rec.kind == DomainKind::Poison {
                poison_seen += 1;
                let r = crawler.crawl_one(id);
                assert!(r.tag.is_none());
                if r.http_ok {
                    poison_ok += 1;
                }
            }
        }
        assert!(poison_seen > 100);
        assert!(
            (poison_ok as f64) < poison_seen as f64 * 0.01,
            "{poison_ok}/{poison_seen} poison responding"
        );
    }

    #[test]
    fn live_and_tagged_exclude_benign_lists() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        // Pick an uncompromised listed benign domain (a compromised
        // one may redirect to a dead storefront and legitimately fail).
        let (benign_id, _) = truth
            .universe
            .iter()
            .find(|(id, r)| {
                r.kind == DomainKind::Benign
                    && r.alexa_rank.is_some()
                    && truth.universe.redirect_target(*id).is_none()
            })
            .unwrap();
        let r = crawler.crawl_one(benign_id);
        assert!(r.http_ok);
        assert!(r.benign_listed());
        assert!(!r.is_live(), "Alexa-listed domain is excluded from live");
        assert!(!r.is_tagged());
    }

    #[test]
    fn sharded_crawl_is_bit_identical_to_serial() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let ids: Vec<DomainId> = truth.universe.iter().map(|(d, _)| d).collect();
        let serial = crawler.crawl(ids.iter().copied());
        for workers in [1, 2, 8] {
            let par = crawler.crawl_par(ids.iter().copied(), &Parallelism::fixed(workers));
            assert_eq!(par.len(), serial.len());
            for (d, r) in serial.iter() {
                assert_eq!(par.get(d), Some(r), "{d:?}");
            }
        }
    }

    #[test]
    fn faulted_crawl_is_deterministic_and_degrades() {
        use taster_sim::FaultProfile;
        let truth = world();
        let ids: Vec<DomainId> = truth.universe.iter().map(|(d, _)| d).collect();
        let clean = Crawler::new(&truth).crawl(ids.iter().copied());
        let plan = FaultPlan::new(FaultProfile::flaky_crawler(), truth.seed);
        let flaky = Crawler::with_faults(&truth, plan.clone());
        let faulted = flaky.crawl(ids.iter().copied());
        // Terminal dispositions appear and cost extra attempts.
        assert!(faulted.timeouts() > 0, "timeouts observed");
        assert!(faulted.unreachable() > 0, "unreachable observed");
        assert!(faulted.total_attempts() > faulted.len() as u64);
        assert!(faulted.total_backoff_secs() > 0);
        // Deterministic and shard-independent: 1/2/8 workers agree.
        for workers in [2, 8] {
            let par = flaky.crawl_par(ids.iter().copied(), &Parallelism::fixed(workers));
            for (d, r) in faulted.iter() {
                assert_eq!(par.get(d), Some(r), "{d:?}");
            }
        }
        // A timed-out domain never reports http_ok; an unreachable one
        // never reports registered.
        for (_, r) in faulted.iter() {
            match r.disposition {
                Disposition::Timeout => assert!(!r.http_ok),
                Disposition::Unreachable => assert!(!r.http_ok && !r.registered),
                Disposition::Ok => {}
            }
        }
        // The clean crawl is untouched by an off plan.
        let off = Crawler::with_faults(&truth, FaultPlan::off(truth.seed));
        let same = off.crawl(ids.iter().copied());
        for (d, r) in clean.iter() {
            assert_eq!(same.get(d), Some(r));
        }
        assert_eq!(clean.timeouts(), 0);
        assert_eq!(clean.total_attempts(), clean.len() as u64);
    }

    #[test]
    fn retries_recover_some_transient_failures() {
        use taster_sim::FaultProfile;
        let truth = world();
        let ids: Vec<DomainId> = truth.universe.iter().take(2000).map(|(d, _)| d).collect();
        let mut no_retry = FaultProfile::flaky_crawler();
        no_retry.crawl_max_retries = 0;
        let mut with_retry = FaultProfile::flaky_crawler();
        with_retry.crawl_max_retries = 3;
        let hard = Crawler::with_faults(&truth, FaultPlan::new(no_retry, truth.seed))
            .crawl(ids.iter().copied());
        let soft = Crawler::with_faults(&truth, FaultPlan::new(with_retry, truth.seed))
            .crawl(ids.iter().copied());
        assert!(
            soft.timeouts() + soft.unreachable() < hard.timeouts() + hard.unreachable(),
            "retries must recover transient failures: {} vs {}",
            soft.timeouts() + soft.unreachable(),
            hard.timeouts() + hard.unreachable()
        );
    }

    #[test]
    fn crawl_set_deduplicates() {
        let truth = world();
        let crawler = Crawler::new(&truth);
        let ids: Vec<DomainId> = truth.universe.iter().take(50).map(|(d, _)| d).collect();
        let doubled: Vec<DomainId> = ids.iter().chain(ids.iter()).copied().collect();
        let report = crawler.crawl(doubled);
        assert_eq!(report.len(), 50);
        assert!(report.get(ids[0]).is_some());
    }
}
