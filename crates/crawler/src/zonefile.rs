//! Zone-file generation and parsing.
//!
//! The paper's DNS purity check "checked the DNS zone files for the
//! com, net, org, biz, us, aero and info top-level domains" (§4.1.1).
//! This module gives the simulation the same artifact: per-TLD zone
//! files in RFC 1035 master-file syntax (the delegation subset real
//! gTLD zone files contain: NS records per registered name), a parser
//! for them, and a registry the DNS oracle can answer from.
//!
//! Generating text and parsing it back is deliberate: the crawl
//! pipeline consumes the same artifact a researcher would download,
//! so a syntax mistake breaks tests instead of hiding in a boolean.

use std::collections::{BTreeMap, BTreeSet};
use taster_ecosystem::GroundTruth;

/// A set of per-TLD zone files.
#[derive(Debug, Clone, Default)]
pub struct ZoneFiles {
    /// TLD → rendered master-file text.
    files: BTreeMap<String, String>,
}

/// The registration registry parsed back out of zone files.
#[derive(Debug, Clone, Default)]
pub struct ZoneRegistry {
    registered: BTreeSet<String>,
    tlds: BTreeSet<String>,
}

/// Errors from [`parse_zone_file`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneParseError {
    /// Missing `$ORIGIN` directive.
    MissingOrigin,
    /// A record line had fewer than 4 fields.
    ShortRecord(usize),
    /// A record class other than `IN`.
    BadClass(usize),
}

impl std::fmt::Display for ZoneParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneParseError::MissingOrigin => write!(f, "zone file lacks $ORIGIN"),
            ZoneParseError::ShortRecord(l) => write!(f, "line {l}: truncated record"),
            ZoneParseError::BadClass(l) => write!(f, "line {l}: unsupported class"),
        }
    }
}

impl std::error::Error for ZoneParseError {}

impl ZoneFiles {
    /// Renders zone files covering every *registered* domain in the
    /// world, one file per observed public suffix.
    pub fn generate(truth: &GroundTruth) -> ZoneFiles {
        let mut by_tld: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (id, record) in truth.universe.iter() {
            if !record.registered {
                continue;
            }
            let name = truth.universe.table.text(id);
            let (label, suffix) = match name.split_once('.') {
                Some(pair) => pair,
                None => continue,
            };
            by_tld
                .entry(suffix.to_string())
                .or_default()
                .push(label.to_string());
        }
        let mut files = BTreeMap::new();
        for (tld, mut labels) in by_tld {
            labels.sort();
            labels.dedup();
            let mut text = String::with_capacity(labels.len() * 40 + 128);
            text.push_str(&format!("$ORIGIN {tld}.\n$TTL 172800\n"));
            text.push_str(
                "@ IN SOA a.gtld-servers.net. nstld.verisign-grs.com. 2010080100 1800 900 604800 86400\n",
            );
            for label in labels {
                // Real gTLD zones carry two NS delegations per name.
                text.push_str(&format!("{label} IN NS ns1.{label}.{tld}.\n"));
                text.push_str(&format!("{label} IN NS ns2.{label}.{tld}.\n"));
            }
            files.insert(tld, text);
        }
        ZoneFiles { files }
    }

    /// The TLDs for which a file exists.
    pub fn tlds(&self) -> impl Iterator<Item = &str> {
        self.files.keys().map(|s| s.as_str())
    }

    /// The rendered file for one TLD.
    pub fn file(&self, tld: &str) -> Option<&str> {
        self.files.get(tld).map(|s| s.as_str())
    }

    /// Parses every file into a queryable registry.
    pub fn parse_all(&self) -> Result<ZoneRegistry, ZoneParseError> {
        let mut registry = ZoneRegistry::default();
        for text in self.files.values() {
            parse_zone_file(text, &mut registry)?;
        }
        Ok(registry)
    }
}

/// Parses one master-file text into `registry`.
pub fn parse_zone_file(text: &str, registry: &mut ZoneRegistry) -> Result<(), ZoneParseError> {
    let mut origin: Option<String> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            origin = Some(rest.trim().trim_end_matches('.').to_ascii_lowercase());
            continue;
        }
        if line.starts_with('$') {
            continue; // $TTL and friends
        }
        let origin_ref = origin.as_ref().ok_or(ZoneParseError::MissingOrigin)?;
        let fields: Vec<&str> = line.split_whitespace().collect();
        if fields.len() < 4 {
            return Err(ZoneParseError::ShortRecord(lineno + 1));
        }
        // <owner> [ttl] IN <type> <rdata...> — we accept the simple
        // 4-field layout our generator emits plus optional TTL.
        let (owner, class_idx) = (
            fields[0],
            if fields[1].eq_ignore_ascii_case("IN") {
                1
            } else {
                2
            },
        );
        if !fields
            .get(class_idx)
            .is_some_and(|c| c.eq_ignore_ascii_case("IN"))
        {
            return Err(ZoneParseError::BadClass(lineno + 1));
        }
        let rtype = fields.get(class_idx + 1).copied().unwrap_or("");
        if owner == "@" || !rtype.eq_ignore_ascii_case("NS") {
            continue; // SOA / apex records
        }
        let name = format!("{}.{}", owner.to_ascii_lowercase(), origin_ref);
        registry.registered.insert(name);
        registry.tlds.insert(origin_ref.clone());
    }
    Ok(())
}

impl ZoneRegistry {
    /// Whether `domain` (a registered-domain string) is delegated.
    pub fn contains(&self, domain: &str) -> bool {
        self.registered.contains(domain)
    }

    /// Number of delegated names.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// True when no names are delegated.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }

    /// TLDs covered.
    pub fn tlds(&self) -> impl Iterator<Item = &str> {
        self.tlds.iter().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::EcosystemConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 113).unwrap()
    }

    #[test]
    fn round_trip_matches_ground_truth() {
        let truth = world();
        let zones = ZoneFiles::generate(&truth);
        let registry = zones.parse_all().unwrap();
        let mut checked_registered = 0;
        let mut checked_unregistered = 0;
        for (id, record) in truth.universe.iter() {
            let name = truth.universe.table.text(id);
            assert_eq!(
                registry.contains(name),
                record.registered,
                "zone-file round trip for {name}"
            );
            if record.registered {
                checked_registered += 1;
            } else {
                checked_unregistered += 1;
            }
        }
        assert!(checked_registered > 100);
        assert!(
            checked_unregistered > 100,
            "poison gives unregistered names"
        );
    }

    #[test]
    fn files_look_like_master_files() {
        let truth = world();
        let zones = ZoneFiles::generate(&truth);
        let com = zones.file("com").expect("com zone exists");
        assert!(com.starts_with("$ORIGIN com.\n"));
        assert!(com.contains(" IN SOA "));
        assert!(com.contains(" IN NS ns1."));
        // Two NS records per delegated name.
        let ns = com.matches(" IN NS ").count();
        let names: std::collections::HashSet<_> = com
            .lines()
            .filter(|l| l.contains(" IN NS "))
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(ns, names.len() * 2);
    }

    #[test]
    fn parser_rejects_malformed_input() {
        let mut reg = ZoneRegistry::default();
        assert_eq!(
            parse_zone_file("foo IN NS ns1.foo.com.", &mut reg),
            Err(ZoneParseError::MissingOrigin)
        );
        assert_eq!(
            parse_zone_file("$ORIGIN com.\nfoo IN\n", &mut reg),
            Err(ZoneParseError::ShortRecord(2))
        );
        assert_eq!(
            parse_zone_file("$ORIGIN com.\nfoo 3600 CH NS x.\n", &mut reg),
            Err(ZoneParseError::BadClass(2))
        );
    }

    #[test]
    fn parser_accepts_ttl_and_comments() {
        let mut reg = ZoneRegistry::default();
        let text = "$ORIGIN net.\n$TTL 3600\n; comment line\n\
                    example 86400 IN NS ns1.example.net. ; inline comment\n";
        parse_zone_file(text, &mut reg).unwrap();
        assert!(reg.contains("example.net"));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.tlds().collect::<Vec<_>>(), vec!["net"]);
    }

    #[test]
    fn multi_label_suffixes_get_their_own_zone() {
        let truth = world();
        let zones = ZoneFiles::generate(&truth);
        // The generator writes e.g. a `co.uk` zone when such domains
        // exist in the world.
        let has_multi = zones.tlds().any(|t| t.contains('.'));
        assert!(
            has_multi,
            "expected at least one second-level registry zone"
        );
    }
}
