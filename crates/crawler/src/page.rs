//! Storefront page rendering.
//!
//! The crawler tags a domain by looking at the *content* it serves, so
//! the simulation serves content: each live storefront renders an HTML
//! page carrying its program's branding (the hook for the
//! hand-generated signatures of §3.4) and — for programs that do so —
//! an embedded affiliate identifier (RX-Promotion's behaviour, §4.2.3).

use taster_domain::DomainId;
use taster_ecosystem::domains::DomainKind;
use taster_ecosystem::ids::Vertical;
use taster_ecosystem::GroundTruth;

/// Renders the page served by `domain`, or `None` when the domain does
/// not serve content (dead, or not a storefront/benign host).
///
/// Redirect resolution is the HTTP oracle's job — pass the *final*
/// domain of a fetch here.
pub fn render_page(truth: &GroundTruth, domain: DomainId) -> Option<String> {
    let rec = truth.universe.record(domain);
    if !rec.live {
        return None;
    }
    match rec.kind {
        DomainKind::Storefront { program, affiliate } => {
            let prog = truth.roster.program(program);
            let title = match prog.vertical {
                Vertical::Pharma => "Trusted Online Pharmacy",
                Vertical::Replica => "Luxury Replica Boutique",
                Vertical::Software => "OEM Software Warehouse",
                Vertical::Casino => "Grand Casino Online",
                Vertical::Dating => "Meet Someone Tonight",
                Vertical::Ebook => "Instant eBook Library",
            };
            let aff_meta = if prog.embeds_affiliate_id {
                format!("\n  <meta name=\"affid\" content=\"{}\">", affiliate.0)
            } else {
                String::new()
            };
            Some(format!(
                "<!DOCTYPE html>\n<html>\n<head>\n  <title>{title}</title>\n  \
                 <meta name=\"generator\" content=\"{}\">{aff_meta}\n</head>\n<body>\n\
                 <h1>{title}</h1>\n<p>Welcome to {}!</p>\n\
                 <div class=\"cart\">Add to cart</div>\n</body>\n</html>\n",
                prog.name,
                truth.universe.table.text(domain),
            ))
        }
        DomainKind::Benign => Some(format!(
            "<!DOCTYPE html>\n<html><head><title>{0}</title></head>\n\
             <body><p>Welcome to {0}.</p></body></html>\n",
            truth.universe.table.text(domain)
        )),
        // A live landing domain serves only a redirect; a fetch never
        // terminates here. Poison domains never serve storefronts.
        DomainKind::Landing | DomainKind::Poison => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::program::RX_PROGRAM;
    use taster_ecosystem::EcosystemConfig;

    fn world() -> GroundTruth {
        GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 31).unwrap()
    }

    #[test]
    fn rx_storefronts_embed_affiliate_ids() {
        let truth = world();
        let mut checked = 0;
        for (id, rec) in truth.universe.iter() {
            if let DomainKind::Storefront { program, affiliate } = rec.kind {
                if program == RX_PROGRAM && rec.live {
                    let html = render_page(&truth, id).unwrap();
                    assert!(html.contains("RX-Promotion"));
                    assert!(html.contains(&format!("content=\"{}\"", affiliate.0)));
                    checked += 1;
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn non_rx_pages_have_no_affid() {
        let truth = world();
        for (id, rec) in truth.universe.iter() {
            if let DomainKind::Storefront { program, .. } = rec.kind {
                if program != RX_PROGRAM && rec.live {
                    let html = render_page(&truth, id).unwrap();
                    assert!(!html.contains("affid"), "{html}");
                    return;
                }
            }
        }
        panic!("no non-RX storefront found");
    }

    #[test]
    fn dead_and_poison_serve_nothing() {
        let truth = world();
        for (id, rec) in truth.universe.iter() {
            if !rec.live {
                assert!(render_page(&truth, id).is_none());
            }
            if rec.kind == DomainKind::Poison {
                assert!(render_page(&truth, id).is_none());
            }
        }
    }

    #[test]
    fn benign_pages_render() {
        let truth = world();
        let (id, _) = truth
            .universe
            .iter()
            .find(|(_, r)| r.kind == DomainKind::Benign)
            .unwrap();
        let html = render_page(&truth, id).unwrap();
        assert!(html.contains("<title>"));
    }
}
