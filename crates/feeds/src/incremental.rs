//! Incremental (epoch-by-epoch) feed collection for `taster serve`.
//!
//! The batch pipeline ([`crate::pipeline`]) collects the whole event
//! log in one pass. The serve daemon instead ingests the *time-sorted*
//! event rows in slices, sealing an epoch snapshot after each slice so
//! purity/coverage/timing become sliding-window queries over running
//! columnar state.
//!
//! Two properties of the engine make this safe:
//!
//! * every collection decision is keyed by `(seed, stream, sorted
//!   event index)` — a pure function of the event, not of slice
//!   boundaries — and
//! * [`Feed::record`] is commutative and associative (min first-seen,
//!   max last-seen, summed volume),
//!
//! so applying each event exactly once, in any partitioning, yields a
//! final [`FeedSet`] bit-identical to the batch pass. The non-event
//! sources (benign pollution, Hyb's report sample and web-spam corpus,
//! the Hu report stream, blacklist listings) draw from *sequential*
//! RNG streams, so [`IngestState::new`] pre-decides all of them up
//! front — in the exact order the batch pass would — and replays the
//! resulting fault-free records through a time cursor as the watermark
//! advances. This is also what makes crash recovery exact: a restored
//! checkpoint re-presamples the sources (deterministic), repositions
//! the cursors at the watermark, and replays only the remaining rows.

use crate::collectors::blacklist::blacklist_source_records;
use crate::collectors::hu::hu_source_records;
use crate::config::FeedsConfig;
use crate::engine::{
    apply_source_record, compute_fast_ok, run_rows, shard_ranges, MemberSpec, RunCtx, ShardObs,
    SourceRecord,
};
use crate::error::PipelineError;
use crate::feed::{Feed, FeedSet};
use crate::id::FeedId;
use crate::pipeline::content_members;
use std::ops::Range;
use taster_ecosystem::buffer::EventBuffer;
use taster_mailsim::MailWorld;
use taster_sim::{FaultPlan, Parallelism, SimTime};

/// One pre-decided source stream feeding one feed, replayed by time.
struct SourceStream {
    /// Index into the [`FeedId::ALL`]-ordered feed vector.
    feed: usize,
    /// Next unapplied record.
    cursor: usize,
    /// Records sorted (stably) by landing time.
    records: Vec<SourceRecord>,
}

/// Running collection state: ten building feeds plus the cursors that
/// track how much of the event log and the source streams has been
/// applied. All fields are owned — no borrow of the world — so the
/// daemon can hold the state and the world side by side.
pub struct IngestState {
    members: Vec<MemberSpec>,
    fast_ok: Vec<bool>,
    /// All ten feeds in [`FeedId::ALL`] order, in the building state.
    feeds: Vec<Feed>,
    /// Time-sorted event rows already ingested (`0..rows_done`).
    rows_done: usize,
    total_rows: usize,
    watermark: SimTime,
    sources: Vec<SourceStream>,
}

/// Maps a member slot (0..7) to its index in [`FeedId::ALL`] order.
fn member_feed_index(member: &MemberSpec) -> usize {
    member.feed_id().index()
}

impl IngestState {
    /// Validates the configuration and pre-decides every non-event
    /// source, leaving all ten feeds empty and the row cursor at zero.
    pub fn new(
        world: &MailWorld,
        config: &FeedsConfig,
        plan: &FaultPlan,
    ) -> Result<IngestState, PipelineError> {
        config.validate().map_err(PipelineError::InvalidConfig)?;
        plan.profile()
            .validate()
            .map_err(PipelineError::InvalidFaultProfile)?;
        let members: Vec<MemberSpec> = content_members(config).to_vec();
        let mut feeds: Vec<Feed> = FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect();
        for member in &members {
            feeds[member_feed_index(member)] = member.empty_feed();
        }
        feeds[FeedId::Hu.index()].samples = Some(0);

        let mut obs = ShardObs::new(false);
        let mut sources = Vec::new();
        for member in &members {
            let records = crate::engine::member_source_records(world, member, plan, &mut obs);
            sources.push(SourceStream {
                feed: member_feed_index(member),
                cursor: 0,
                records,
            });
        }
        sources.push(SourceStream {
            feed: FeedId::Hu.index(),
            cursor: 0,
            records: hu_source_records(world, plan, &mut obs),
        });
        for (id, cfg) in [(FeedId::Dbl, &config.dbl), (FeedId::Uribl, &config.uribl)] {
            sources.push(SourceStream {
                feed: id.index(),
                cursor: 0,
                records: blacklist_source_records(world, cfg, id, plan, &mut obs),
            });
        }
        for s in &mut sources {
            s.records.sort_by_key(|r| r.time);
        }

        Ok(IngestState {
            members,
            fast_ok: compute_fast_ok(world),
            feeds,
            rows_done: 0,
            total_rows: world.truth.log.len,
            watermark: SimTime::ZERO,
            sources,
        })
    }

    /// Rebuilds state from a checkpoint: `feeds` restored to their
    /// sealed-epoch contents (building state), `rows_done` rows already
    /// applied. Source cursors are repositioned at the watermark —
    /// presampling is deterministic, so the skipped prefix is exactly
    /// the set of records the checkpointed feeds already contain.
    pub fn resume(
        world: &MailWorld,
        config: &FeedsConfig,
        plan: &FaultPlan,
        feeds: Vec<Feed>,
        rows_done: usize,
    ) -> Result<IngestState, PipelineError> {
        let mut state = IngestState::new(world, config, plan)?;
        if rows_done > state.total_rows {
            return Err(PipelineError::InvalidScenario(format!(
                "checkpoint claims {rows_done} rows but the log has {}",
                state.total_rows
            )));
        }
        if feeds.len() != FeedId::ALL.len() {
            return Err(PipelineError::InvalidScenario(format!(
                "checkpoint carries {} feeds, need {}",
                feeds.len(),
                FeedId::ALL.len()
            )));
        }
        state.watermark = watermark_at(world, rows_done);
        state.rows_done = rows_done;
        state.feeds = feeds;
        for s in &mut state.sources {
            s.cursor = s.records.partition_point(|r| r.time <= state.watermark);
        }
        Ok(state)
    }

    /// Time-sorted event rows in the log.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Rows already ingested.
    pub fn rows_done(&self) -> usize {
        self.rows_done
    }

    /// True once every event row has been applied.
    pub fn ingest_complete(&self) -> bool {
        self.rows_done == self.total_rows
    }

    /// Sim-time watermark: every event at or before it is ingested.
    pub fn watermark(&self) -> SimTime {
        self.watermark
    }

    /// The ten building feeds in [`FeedId::ALL`] order.
    pub fn feeds(&self) -> &[Feed] {
        &self.feeds
    }

    /// Ingests time-sorted rows `rows_done..target_row` on `par`
    /// workers, then replays every pre-decided source record up to the
    /// new watermark. Returns the number of rows applied.
    pub fn advance(
        &mut self,
        world: &MailWorld,
        plan: &FaultPlan,
        par: &Parallelism,
        target_row: usize,
    ) -> usize {
        let target = target_row.min(self.total_rows);
        if target <= self.rows_done {
            return 0;
        }
        let ctx = RunCtx::build(world, &self.members, plan, self.fast_ok.clone());
        let range = self.rows_done..target;
        let results = if let Some(cache) = world.truth.cache() {
            let shards: Vec<Range<usize>> = shard_ranges(range.len(), par.workers())
                .into_iter()
                .map(|r| r.start + range.start..r.end + range.start)
                .collect();
            par.par_map(shards, |rows| run_rows(&ctx, cache, rows, false))
        } else {
            // Out of core: replay the generation-order stream, keeping
            // only rows whose sorted rank falls inside the slice. The
            // scratch buffer carries each row's global sorted index, so
            // every keyed decision is identical to the in-core path.
            let rank = &world.truth.log.rank;
            let mut buf = EventBuffer::with_capacity(range.len());
            for (g, ev) in world.truth.events().enumerate() {
                let r = rank[g] as usize;
                if range.contains(&r) {
                    buf.push(&ev, rank[g]);
                }
            }
            let shards = shard_ranges(buf.len(), par.workers());
            par.par_map(shards, |rows| run_rows(&ctx, &buf, rows, false))
        };
        for (shard, _metrics) in results {
            for (piece, member) in shard.into_iter().zip(&self.members) {
                self.feeds[member_feed_index(member)].merge(piece);
            }
        }
        self.rows_done = target;
        self.watermark = watermark_at(world, target);
        self.replay_sources_to(self.watermark);
        target - range.start
    }

    /// Applies every pre-decided source record with `time <= limit`.
    fn replay_sources_to(&mut self, limit: SimTime) {
        let mut obs = ShardObs::new(false);
        for s in &mut self.sources {
            while s.cursor < s.records.len() && s.records[s.cursor].time <= limit {
                apply_source_record(&mut self.feeds[s.feed], &s.records[s.cursor], &mut obs);
                s.cursor += 1;
            }
        }
    }

    /// Seals the current state into a queryable [`FeedSet`] without
    /// disturbing ingestion: readers get this frozen epoch while the
    /// daemon keeps advancing the building copy. Gap markers for
    /// outage windows are attached, as in the batch pipeline.
    pub fn sealed_snapshot(&self, plan: &FaultPlan) -> FeedSet {
        let mut feeds = self.feeds.clone();
        note_gaps(&mut feeds, plan);
        FeedSet::new(feeds)
    }

    /// Drains every remaining source record (blacklist listings can
    /// land after the last delivery event) and seals the final set.
    /// Once every row has been ingested, the result is bit-identical
    /// to the batch pipeline's [`crate::try_collect_all_faulted`].
    pub fn finish(&mut self, plan: &FaultPlan) -> FeedSet {
        debug_assert!(self.ingest_complete(), "finish() before the last row");
        self.replay_sources_to(SimTime(u64::MAX));
        self.sealed_snapshot(plan)
    }
}

/// The sim-time watermark after `rows` time-sorted rows: the time of
/// the last ingested row (or zero before any row).
fn watermark_at(world: &MailWorld, rows: usize) -> SimTime {
    if rows == 0 {
        return SimTime::ZERO;
    }
    if let Some(cache) = world.truth.cache() {
        return cache.time[rows - 1];
    }
    let want = (rows - 1) as u32;
    let rank = &world.truth.log.rank;
    for (g, ev) in world.truth.events().enumerate() {
        if rank[g] == want {
            return ev.time;
        }
    }
    SimTime::ZERO
}

/// Attaches outage windows as gap markers, as the batch pipeline does.
fn note_gaps(feeds: &mut [Feed], plan: &FaultPlan) {
    if plan.is_off() {
        return;
    }
    for feed in feeds {
        for window in plan.outage_windows(feed.id.label()) {
            feed.note_gap(window);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::try_collect_all_faulted;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::MailConfig;
    use taster_sim::FaultProfile;

    fn world(scale: f64, seed: u64) -> MailWorld {
        let truth = GroundTruth::generate(&EcosystemConfig::default().with_scale(scale), seed)
            .expect("generate");
        MailWorld::build(truth, MailConfig::default().with_scale(scale)).expect("build")
    }

    fn assert_sets_equal(a: &FeedSet, b: &FeedSet) {
        for id in FeedId::ALL {
            let (x, y) = (a.get(id), b.get(id));
            assert_eq!(x.samples, y.samples, "{id} samples");
            assert_eq!(x.unique_domains(), y.unique_domains(), "{id} domains");
            assert_eq!(x.unique_fqdns(), y.unique_fqdns(), "{id} fqdns");
            assert_eq!(x.gaps(), y.gaps(), "{id} gaps");
            for (d, s) in x.iter() {
                assert_eq!(Some(s), y.stats(d), "{id} {d:?}");
            }
        }
    }

    #[test]
    fn epoch_ingestion_matches_batch_collection() {
        let w = world(0.02, 67);
        let cfg = FeedsConfig::default();
        for profile in [FaultProfile::off(), FaultProfile::lossy_feeds()] {
            let plan = FaultPlan::new(profile, w.truth.seed);
            let batch =
                try_collect_all_faulted(&w, &cfg, &plan, &Parallelism::serial()).expect("batch");
            let mut state = IngestState::new(&w, &cfg, &plan).expect("state");
            let par = Parallelism::fixed(2);
            // Ragged epochs on purpose: boundaries must not matter.
            let total = state.total_rows();
            for target in [total / 7, total / 3, total / 2 + 11, total] {
                state.advance(&w, &plan, &par, target);
            }
            let incremental = state.finish(&plan);
            assert_sets_equal(&batch, &incremental);
        }
    }

    #[test]
    fn resume_from_restored_feeds_matches_uninterrupted() {
        let w = world(0.02, 67);
        let cfg = FeedsConfig::default();
        let plan = FaultPlan::new(FaultProfile::feed_outage(), w.truth.seed);
        let par = Parallelism::serial();

        let mut full = IngestState::new(&w, &cfg, &plan).expect("state");
        let total = full.total_rows();
        full.advance(&w, &plan, &par, total);
        let uninterrupted = full.finish(&plan);

        // "Crash" after 40% of the rows: keep only the building feeds
        // and the row counter, as a checkpoint would.
        let mut first = IngestState::new(&w, &cfg, &plan).expect("state");
        let stop = total * 2 / 5;
        first.advance(&w, &plan, &par, stop);
        let feeds = first.feeds().to_vec();

        let mut resumed = IngestState::resume(&w, &cfg, &plan, feeds, stop).expect("resume");
        resumed.advance(&w, &plan, &par, total);
        let replayed = resumed.finish(&plan);
        assert_sets_equal(&uninterrupted, &replayed);
    }
}
