//! Fused, streaming, sharded execution of the content collectors.
//!
//! Seven of the ten feeds (mx1–3, Ac1–2, Bot, Hyb's trap/harvest
//! sources) are *content* collectors: they walk the delivery event
//! stream, decide per event whether they captured the copy, and reduce
//! the message content to registered domains. Run naively that is
//! seven full passes over a materialised log, each rendering its own
//! copy of every captured message.
//!
//! This engine makes the work streaming, shardable and shareable:
//!
//! * **Chunked streaming over the replay stream.** The event log is
//!   never materialised: the generator's replay stream fills one
//!   struct-of-arrays [`EventBuffer`] per chunk and the collectors
//!   consume it in place — peak memory is O(chunk), independent of the
//!   run length.
//! * **Per-event RNG streams keyed by sorted index.** Each member's
//!   capture decision for the event at time-sorted position *i* draws
//!   from a stream derived from `(seed, member name, i)` — a pure
//!   function of the event, not of how many draws earlier events
//!   consumed, which chunk the event landed in, or how the chunk was
//!   sharded. Feeds stay mutually independent, and the output is
//!   *bit-identical at any chunk size and worker count*.
//! * **Shard-and-merge parallelism.** Each chunk is split into one
//!   contiguous row range per worker and merged with [`Feed::merge`],
//!   which is commutative and associative.
//! * **Render-free fast path.** A rendered body only ever contributes
//!   the advertised and chaff registered domains back to a feed; when
//!   both domain texts provably survive the host→registered-domain
//!   reduction unchanged ([`DomainExtractor::fast_reducible`]), the
//!   engine replays just the renderer's URL-subdomain draws
//!   ([`replay_spam_url_hosts`]) and computes the record list and
//!   FQDN hashes directly — no body, no SMTP dialogue, no URL scan.
//!   Events that need real text (truncation faults, non-reducible
//!   domains) fall back to a full render; either way every member
//!   sees the same copy, drawn from the same per-event render stream.

use crate::config::{AcConfig, BotConfig, HybConfig, MxConfig};
use crate::feed::Feed;
use crate::id::FeedId;
use crate::parse::{fnv64_parts, DomainExtractor};
use rand::RngExt;
use std::ops::Range;
use taster_domain::DomainId;
use taster_ecosystem::buffer::EventBuffer;
use taster_ecosystem::campaign::{DeliveryVector, TargetClass};
use taster_mailsim::benign::BenignDest;
use taster_mailsim::render::{render_spam_into, replay_spam_url_hosts, SUBDOMAINS};
use taster_mailsim::MailWorld;
use taster_sim::fault::{truncate_payload, FaultPlan, RecordFault};
use taster_sim::metrics::{Histogram, MetricsShard};
use taster_sim::rng::name_key;
use taster_sim::{Obs, Parallelism, RngStream, SimTime, TimeWindow};

/// Stream name for the shared per-event message render.
const RENDER_STREAM: &str = "feeds/render-spam";

/// Bucket edges for the domains-per-captured-record histogram.
const DOMAINS_PER_RECORD_BOUNDS: [u64; 6] = [0, 1, 2, 5, 10, 20];

/// One content collector participating in the fused pass.
#[derive(Debug, Clone)]
pub(crate) enum MemberSpec {
    /// MX honeypot `index` (0 = mx1, 1 = mx2, 2 = mx3).
    Mx { config: MxConfig, index: u8 },
    /// Honey-account feed `index` (0 = Ac1, 1 = Ac2).
    Ac { config: AcConfig, index: u8 },
    /// The botnet monitor.
    Bot { config: BotConfig },
    /// The hybrid feed's event-driven sources (trap + harvest).
    Hyb { config: HybConfig },
}

impl MemberSpec {
    pub(crate) fn feed_id(&self) -> FeedId {
        match self {
            MemberSpec::Mx { index, .. } => {
                [FeedId::Mx1, FeedId::Mx2, FeedId::Mx3][*index as usize]
            }
            MemberSpec::Ac { index, .. } => [FeedId::Ac1, FeedId::Ac2][*index as usize],
            MemberSpec::Bot { .. } => FeedId::Bot,
            MemberSpec::Hyb { .. } => FeedId::Hyb,
        }
    }

    fn stream_name(&self) -> String {
        match self {
            MemberSpec::Mx { index, .. } => format!("feeds/mx{}", index + 1),
            MemberSpec::Ac { index, .. } => format!("feeds/ac{}", index + 1),
            MemberSpec::Bot { .. } => "feeds/bot".to_string(),
            MemberSpec::Hyb { .. } => "feeds/hyb".to_string(),
        }
    }

    fn reports_volume(&self) -> bool {
        !matches!(self, MemberSpec::Hyb { .. })
    }

    pub(crate) fn empty_feed(&self) -> Feed {
        let mut feed = Feed::new(self.feed_id(), self.reports_volume());
        feed.samples = Some(0);
        feed
    }
}

/// Read-only per-run context shared by every chunk and shard.
pub(crate) struct RunCtx<'w> {
    world: &'w MailWorld,
    members: &'w [MemberSpec],
    plan: &'w FaultPlan,
    seed: u64,
    outages: Vec<Vec<TimeWindow>>,
    faults_on: bool,
    /// Whether any record-fault rate is non-zero: outage-only profiles
    /// skip the per-record fault decision entirely.
    record_faults_on: bool,
    /// Per-member stream-name keys ([`name_key`]) for per-event child
    /// derivation without re-hashing the name.
    keys: Vec<u64>,
    /// Per-member precomputed [`FaultPlan::fault_key`]s.
    fault_keys: Vec<u64>,
    render_key: u64,
    monitored: Vec<bool>,
    extractor: DomainExtractor,
    /// Per-domain: does the render-free fast path apply? Indexed by
    /// dense [`DomainId`].
    fast_ok: Vec<bool>,
}

impl<'w> RunCtx<'w> {
    /// Builds the shared per-run context. `fast_ok` comes from
    /// [`compute_fast_ok`]; the incremental path computes it once and
    /// clones per epoch, the batch path computes it inline.
    pub(crate) fn build(
        world: &'w MailWorld,
        members: &'w [MemberSpec],
        plan: &'w FaultPlan,
        fast_ok: Vec<bool>,
    ) -> RunCtx<'w> {
        let truth = &world.truth;
        RunCtx {
            world,
            members,
            plan,
            seed: truth.seed,
            outages: members
                .iter()
                .map(|m| plan.outage_windows(m.feed_id().label()))
                .collect(),
            faults_on: !plan.is_off(),
            record_faults_on: plan.record_faults_possible(),
            keys: members.iter().map(|m| name_key(&m.stream_name())).collect(),
            fault_keys: members
                .iter()
                .map(|m| FaultPlan::fault_key(m.feed_id().label()))
                .collect(),
            render_key: name_key(RENDER_STREAM),
            monitored: truth.botnets.iter().map(|b| b.monitored).collect(),
            extractor: DomainExtractor::new(),
            fast_ok,
        }
    }
}

/// Per-domain eligibility of the render-free fast path, indexed by
/// dense [`DomainId`]. Pure in the world: compute once, reuse freely.
pub(crate) fn compute_fast_ok(world: &MailWorld) -> Vec<bool> {
    let table = &world.truth.universe.table;
    let extractor = DomainExtractor::new();
    (0..table.len() as u32)
        .map(|raw| {
            let ok = extractor.fast_reducible(table.text(DomainId(raw)));
            #[cfg(debug_assertions)]
            if ok {
                // The claim behind `ok`: every renderer prefix reduces
                // back to exactly this text.
                let text = table.text(DomainId(raw));
                for sub in SUBDOMAINS {
                    let host = format!("{sub}{text}");
                    debug_assert!(
                        taster_domain::DomainName::parse(&host).is_ok_and(|n| n.as_str() == host),
                        "prefixed host {host} does not round-trip"
                    );
                }
            }
            ok
        })
        .collect()
}

/// Runs `members` over the streamed event log in chunks of
/// `chunk_size`, sharded across `par`'s workers within each chunk,
/// then applies each member's non-event sources (benign pollution,
/// Hyb's report sample and web-spam corpus).
///
/// Fault decisions come from `plan`, each keyed by
/// `(seed, feed label, sorted event index)` — a pure function of the
/// event, never of chunk or shard boundaries — so faulted runs stay
/// bit-identical at any chunk size and worker count, and an off plan
/// leaves the output untouched.
pub(crate) fn collect_content(
    world: &MailWorld,
    members: &[MemberSpec],
    plan: &FaultPlan,
    par: &Parallelism,
    obs: &Obs,
    chunk_size: usize,
) -> Vec<Feed> {
    let chunk_size = chunk_size.max(1);
    let metrics_on = obs.metrics.is_on();
    let truth = &world.truth;
    let ctx = RunCtx::build(world, members, plan, compute_fast_ok(world));

    let mut merged: Vec<Feed> = members.iter().map(MemberSpec::empty_feed).collect();
    let mut metric_shards: Vec<MetricsShard> = Vec::new();
    if let Some(cache) = truth.cache() {
        // In-core: the sorted cache already holds every column keyed
        // by sorted index, so the whole log shards in one pass — no
        // replay, no per-chunk scatter. Shard boundaries cannot change
        // any output: every per-event stream is keyed by `sorted_idx`
        // and [`Feed::merge`] is commutative.
        let shards = shard_ranges(cache.len(), par.workers());
        let results = par.par_map(shards, |range| run_rows(&ctx, cache, range, metrics_on));
        for (shard, shard_metrics) in results {
            for (acc, piece) in merged.iter_mut().zip(shard) {
                acc.merge(piece);
            }
            metric_shards.push(shard_metrics);
        }
    } else {
        // Out of core: stream the replay in chunks. The chunk width
        // obeys the memory budget on top of the configured size.
        let chunk_size = chunk_size.min(truth.config.budget_rows(truth.log.len as u64));
        let rank = &truth.log.rank;
        let mut buf = EventBuffer::with_capacity(chunk_size.min(truth.log.len.max(1)));
        let mut stream = truth.events().enumerate();
        let mut first = true;
        loop {
            buf.clear();
            for (g, ev) in stream.by_ref().take(chunk_size) {
                buf.push(&ev, rank[g]);
            }
            if buf.is_empty() && !first {
                break;
            }
            first = false;
            let shards = shard_ranges(buf.len(), par.workers());
            let results = par.par_map(shards, |range| run_rows(&ctx, &buf, range, metrics_on));
            for (shard, shard_metrics) in results {
                for (acc, piece) in merged.iter_mut().zip(shard) {
                    acc.merge(piece);
                }
                metric_shards.push(shard_metrics);
            }
            if buf.len() < chunk_size {
                break;
            }
        }
    }
    // Chunks stream in generation order and shards split each chunk in
    // row order; their metric totals are commutative sums, absorbed in
    // that same (chunk, shard) order.
    obs.metrics.absorb_in_order(&metric_shards);
    for (feed, member) in merged.iter_mut().zip(members) {
        finalize(world, feed, member, plan, obs);
    }
    merged
}

/// Shard-local observability accumulator: plain integers on the hot
/// path, converted to a [`MetricsShard`] once per shard. When `on` is
/// false every method is branch-and-return, so the unobserved pipeline
/// pays (almost) nothing.
pub(crate) struct ShardObs {
    pub(crate) on: bool,
    pub(crate) events: u64,
    pub(crate) renders: u64,
    pub(crate) captured: u64,
    pub(crate) dropped: u64,
    pub(crate) duplicated: u64,
    pub(crate) truncated: u64,
    pub(crate) outage_skips: u64,
    pub(crate) snapshot_dropped: u64,
    pub(crate) domains_hist: Histogram,
}

impl ShardObs {
    pub(crate) fn new(on: bool) -> ShardObs {
        ShardObs {
            on,
            events: 0,
            renders: 0,
            captured: 0,
            dropped: 0,
            duplicated: 0,
            truncated: 0,
            outage_skips: 0,
            snapshot_dropped: 0,
            domains_hist: Histogram::new(&DOMAINS_PER_RECORD_BOUNDS),
        }
    }

    pub(crate) fn record_fault(&mut self, fault: RecordFault) {
        if !self.on {
            return;
        }
        match fault {
            RecordFault::Deliver => {}
            RecordFault::Drop => self.dropped += 1,
            RecordFault::Duplicate => self.duplicated += 1,
            RecordFault::Truncate => self.truncated += 1,
        }
    }

    pub(crate) fn record_domains(&mut self, n: u64) {
        if self.on {
            self.captured += 1;
            self.domains_hist.observe(n);
        }
    }

    pub(crate) fn into_shard(self) -> MetricsShard {
        let mut shard = MetricsShard::new();
        if !self.on {
            return shard;
        }
        shard.add("collect/events", self.events);
        shard.add("collect/renders", self.renders);
        shard.add("collect/records", self.captured);
        shard.add("collect/fault/dropped", self.dropped);
        shard.add("collect/fault/duplicated", self.duplicated);
        shard.add("collect/fault/truncated", self.truncated);
        shard.add("collect/outage_skips", self.outage_skips);
        shard.add("collect/fault/snapshot_dropped", self.snapshot_dropped);
        if self.domains_hist.total() > 0 {
            shard.merge_histogram("collect/domains_per_record", &self.domains_hist);
        }
        shard
    }
}

/// Splits `0..n` into up to `parts` contiguous ranges of near-equal
/// size. The split only affects scheduling: shard outputs merge to the
/// same feeds wherever the boundaries fall.
pub(crate) fn shard_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    (0..parts)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// An MX sink stores the message body minus its terminating newline
/// (the SMTP DATA state machine re-joins the dot-unstuffed lines; no
/// rendered body line ever starts with `.`), so that is the payload a
/// real MX collector parses.
fn mx_stored(body: &str) -> &str {
    debug_assert!(body.ends_with('\n'));
    &body[..body.len().saturating_sub(1)]
}

pub(crate) fn run_rows(
    ctx: &RunCtx<'_>,
    buf: &EventBuffer,
    rows: Range<usize>,
    metrics_on: bool,
) -> (Vec<Feed>, MetricsShard) {
    let mut shard_obs = ShardObs::new(metrics_on);
    shard_obs.events = rows.len() as u64;
    let truth = &ctx.world.truth;

    let mut feeds: Vec<Feed> = ctx.members.iter().map(MemberSpec::empty_feed).collect();

    // Buffers reused across every row in the shard.
    let mut body = String::with_capacity(512);
    let mut extracted: Vec<(DomainId, u64)> = Vec::new();
    let mut extracted_mx: Vec<(DomainId, u64)> = Vec::new();
    let mut truncated_scratch: Vec<(DomainId, u64)> = Vec::new();
    let mut fast_records: Vec<(DomainId, u64)> = Vec::new();

    for r in rows {
        // The time-sorted index: the key of every per-event stream.
        let i = buf.sorted_idx[r] as u64;
        let time = buf.time[r];
        let advertised = DomainId(buf.advertised[r]);
        let chaff = buf.chaff(r);
        let target = buf.target[r];
        let delivery = buf.delivery[r];
        let campaign = &truth.campaigns[buf.campaign[r] as usize];

        let chaff_distinct = chaff.is_some_and(|c| c != advertised);
        let fast_eligible =
            ctx.fast_ok[advertised.index()] && chaff.is_none_or(|c| ctx.fast_ok[c.index()]);
        // Per-event lazily-derived state, shared across members.
        let mut render_counted = false;
        let mut body_ready = false;
        let mut extracted_ready = false;
        let mut extracted_mx_ready = false;
        let mut fast_ready = false;

        for (m, member) in ctx.members.iter().enumerate() {
            // A collector that is down records nothing. Checked before
            // any stream is derived: per-event child streams mean the
            // skip cannot perturb other events' draws.
            if ctx.faults_on && ctx.outages[m].iter().any(|w| w.contains(time)) {
                if shard_obs.on {
                    shard_obs.outage_skips += 1;
                }
                continue;
            }
            // Cheap structural filter first, against the chunk's
            // columns; the RNG stream is only derived for eligible
            // (member, event) pairs.
            let capture_prob = match member {
                MemberSpec::Mx { config, index } => {
                    if target != TargetClass::BruteForce {
                        continue;
                    }
                    if campaign.brute_mask & (1u8 << index) == 0 {
                        continue;
                    }
                    config.capture_prob
                }
                MemberSpec::Ac { config, .. } => {
                    let TargetClass::Harvested(vector) = target else {
                        continue;
                    };
                    if config.vector_mask & (1 << vector) == 0 {
                        continue;
                    }
                    config.capture_prob
                }
                MemberSpec::Bot { config } => {
                    let DeliveryVector::Botnet(b) = delivery else {
                        continue;
                    };
                    if !ctx.monitored.get(b.index()).copied().unwrap_or(false) {
                        continue;
                    }
                    config.capture_prob
                }
                MemberSpec::Hyb { config } => match target {
                    // The Hyb trap's addresses only ever leaked into
                    // the older direct-spammer lists, so it misses the
                    // botnet blasts — part of why Hyb's mail-volume
                    // coverage is so poor despite its domain breadth
                    // (§4.2.2).
                    TargetClass::BruteForce if matches!(delivery, DeliveryVector::Direct) => {
                        config.trap_prob
                    }
                    TargetClass::Harvested(v) if v == config.harvest_vector => config.harvest_prob,
                    _ => continue,
                },
            };
            let mut rng = RngStream::child_keyed(ctx.seed, ctx.keys[m], i);
            if !rng.random_bool(capture_prob) {
                continue;
            }

            // Fault disposition for the captured record, keyed by
            // (seed, feed label, sorted event index). A dropped record
            // is lost before the collector logs anything.
            let fault = if ctx.record_faults_on {
                ctx.plan.record_fault_keyed(ctx.fault_keys[m], i)
            } else {
                RecordFault::Deliver
            };
            shard_obs.record_fault(fault);
            if fault == RecordFault::Drop {
                continue;
            }
            let copies = if fault == RecordFault::Duplicate {
                2
            } else {
                1
            };

            // First capturing member "renders" the event — on the fast
            // path no text is produced, but the counter keeps the old
            // meaning: events whose content was materialised for at
            // least one member.
            if shard_obs.on && !render_counted {
                shard_obs.renders += 1;
            }
            render_counted = true;

            // The record list this member parses out of the copy. Its
            // content is a pure function of (seed, event, fault), so
            // the fast and slow paths agree bit-for-bit whenever the
            // fast path is eligible (asserted in debug builds).
            let is_mx = matches!(member, MemberSpec::Mx { .. });
            let records: &[(DomainId, u64)] = if fast_eligible && fault != RecordFault::Truncate {
                if !fast_ready {
                    let mut render_rng = RngStream::child_keyed(ctx.seed, ctx.render_key, i);
                    let (adv_sub, chaff_sub) =
                        replay_spam_url_hosts(&mut render_rng, chaff_distinct);
                    fast_records.clear();
                    let adv_text = truth.universe.table.text(advertised);
                    fast_records.push((
                        advertised,
                        fnv64_parts(&[SUBDOMAINS[adv_sub].as_bytes(), adv_text.as_bytes()]),
                    ));
                    if let (Some(c), Some(cs)) = (chaff, chaff_sub) {
                        let chaff_text = truth.universe.table.text(c);
                        fast_records.push((
                            c,
                            fnv64_parts(&[SUBDOMAINS[cs].as_bytes(), chaff_text.as_bytes()]),
                        ));
                    }
                    fast_ready = true;
                    #[cfg(debug_assertions)]
                    {
                        // Cross-check the fast path against a real
                        // render + extraction, for both payload forms.
                        let mut dbg_body = String::new();
                        let mut dbg_rng = RngStream::child_keyed(ctx.seed, ctx.render_key, i);
                        render_spam_into(
                            &mut dbg_body,
                            truth,
                            advertised,
                            chaff,
                            time,
                            &mut dbg_rng,
                        );
                        let mut dbg_records = Vec::new();
                        ctx.extractor.registered_domains_into(
                            &dbg_body,
                            &truth.universe.table,
                            &mut dbg_records,
                        );
                        debug_assert_eq!(dbg_records, fast_records, "fast path vs full body");
                        dbg_records.clear();
                        ctx.extractor.registered_domains_into(
                            mx_stored(&dbg_body),
                            &truth.universe.table,
                            &mut dbg_records,
                        );
                        debug_assert_eq!(dbg_records, fast_records, "fast path vs MX payload");
                    }
                }
                &fast_records
            } else {
                if !body_ready {
                    let mut render_rng = RngStream::child_keyed(ctx.seed, ctx.render_key, i);
                    render_spam_into(&mut body, truth, advertised, chaff, time, &mut render_rng);
                    body_ready = true;
                    extracted_ready = false;
                    extracted_mx_ready = false;
                }
                if fault == RecordFault::Truncate {
                    // Parse the surviving half of the payload this
                    // member's collector stored.
                    let payload = if is_mx { mx_stored(&body) } else { &body };
                    truncated_scratch.clear();
                    ctx.extractor.registered_domains_into(
                        truncate_payload(payload),
                        &truth.universe.table,
                        &mut truncated_scratch,
                    );
                    &truncated_scratch
                } else if is_mx {
                    if !extracted_mx_ready {
                        extracted_mx.clear();
                        ctx.extractor.registered_domains_into(
                            mx_stored(&body),
                            &truth.universe.table,
                            &mut extracted_mx,
                        );
                        extracted_mx_ready = true;
                    }
                    &extracted_mx
                } else {
                    if !extracted_ready {
                        extracted.clear();
                        ctx.extractor.registered_domains_into(
                            &body,
                            &truth.universe.table,
                            &mut extracted,
                        );
                        extracted_ready = true;
                    }
                    &extracted
                }
            };

            let feed = &mut feeds[m];
            for _ in 0..copies {
                feed.count_sample();
                for &(d, host) in records {
                    feed.record(d, time);
                    feed.note_fqdn(host);
                }
                shard_obs.record_domains(records.len() as u64);
            }
        }
    }
    (feeds, shard_obs.into_shard())
}

/// One pre-decided record from a non-event source (benign pollution,
/// Hyb's report sample and web-spam corpus; the Hu report stream and
/// blacklist listings reuse the same shape). Every fault decision has
/// already been taken — applying a `SourceRecord` draws no randomness
/// — so a stream of them can be applied in batch order or replayed
/// incrementally by time cursor and produce the same feed.
#[derive(Debug, Clone)]
pub(crate) struct SourceRecord {
    /// When the record lands in the feed.
    pub(crate) time: SimTime,
    /// 1, or 2 for a duplicated record. Dropped records are never
    /// emitted (their metrics are counted at generation time).
    pub(crate) copies: u8,
    /// Whether each copy counts as a raw sample (false for blacklist
    /// listings, which deliver no samples).
    pub(crate) counts_sample: bool,
    /// Registered domains the record contributes (post-truncation).
    pub(crate) domains: Vec<DomainId>,
}

/// Applies one pre-decided source record to a building feed.
pub(crate) fn apply_source_record(feed: &mut Feed, rec: &SourceRecord, obs: &mut ShardObs) {
    for _ in 0..rec.copies {
        if rec.counts_sample {
            feed.count_sample();
        }
        for &d in &rec.domains {
            feed.record(d, rec.time);
        }
        obs.record_domains(rec.domains.len() as u64);
    }
}

/// Pre-decides a member's non-event sources: every RNG draw and fault
/// decision happens here, in the exact order the serial batch pass
/// makes them, so the emitted records are a pure function of
/// `(world, member, plan)` — identical whether they are then applied
/// all at once ([`finalize`]) or incrementally by a time cursor.
pub(crate) fn member_source_records(
    world: &MailWorld,
    member: &MemberSpec,
    plan: &FaultPlan,
    local: &mut ShardObs,
) -> Vec<SourceRecord> {
    let mut out = Vec::new();
    let faults_on = !plan.is_off();
    let label = member.feed_id().label();
    let down = |t| faults_on && plan.outage_at(label, t);
    match member {
        MemberSpec::Mx { index, .. } => {
            // Legitimate pollution addressed to this honeypot.
            for mail in &world.benign_mail {
                if mail.dest == BenignDest::MxHoneypot(*index) && !down(mail.time) {
                    out.push(SourceRecord {
                        time: mail.time,
                        copies: 1,
                        counts_sample: true,
                        domains: mail.domains.clone(),
                    });
                }
            }
        }
        MemberSpec::Ac { index, .. } => {
            for mail in &world.benign_mail {
                if mail.dest == BenignDest::HoneyAccounts(*index) && !down(mail.time) {
                    out.push(SourceRecord {
                        time: mail.time,
                        copies: 1,
                        counts_sample: true,
                        domains: mail.domains.clone(),
                    });
                }
            }
        }
        MemberSpec::Bot { .. } => {}
        MemberSpec::Hyb { config } => {
            let seed = world.truth.seed;
            let record_faults_on = plan.record_faults_possible();
            // Partner sample of user reports.
            let reports_key = FaultPlan::fault_key("Hyb/reports");
            let mut rng = RngStream::new(seed, "feeds/hyb/reports");
            for (idx, report) in world.provider.reports.iter().enumerate() {
                if !rng.random_bool(config.report_sample_prob) || down(report.time) {
                    continue;
                }
                let fault = if record_faults_on {
                    plan.record_fault_keyed(reports_key, idx as u64)
                } else {
                    RecordFault::Deliver
                };
                local.record_fault(fault);
                if fault == RecordFault::Drop {
                    continue;
                }
                let copies = if fault == RecordFault::Duplicate {
                    2
                } else {
                    1
                };
                // A truncated report record lost the tail of its
                // pre-extracted domain list.
                let keep = if fault == RecordFault::Truncate {
                    report.domains.len() / 2
                } else {
                    report.domains.len()
                };
                out.push(SourceRecord {
                    time: report.time,
                    copies,
                    counts_sample: true,
                    domains: report.domains[..keep].to_vec(),
                });
            }
            // The non-e-mail web-spam corpus.
            let webspam_key = FaultPlan::fault_key("Hyb/webspam");
            let mut rng = RngStream::new(seed, "feeds/hyb/webspam");
            for (idx, &(time, domain)) in world.truth.webspam.iter().enumerate() {
                if !rng.random_bool(config.webspam_prob) || down(time) {
                    continue;
                }
                // Single-domain entries: truncation leaves nothing to
                // cut, so only drop/duplicate apply.
                let fault = if record_faults_on {
                    plan.record_fault_keyed(webspam_key, idx as u64)
                } else {
                    RecordFault::Deliver
                };
                local.record_fault(fault);
                if fault == RecordFault::Drop {
                    continue;
                }
                let copies = if fault == RecordFault::Duplicate {
                    2
                } else {
                    1
                };
                out.push(SourceRecord {
                    time,
                    copies,
                    counts_sample: true,
                    domains: vec![domain],
                });
            }
        }
    }
    out
}

/// Applies a member's non-event sources after the sharded event pass.
///
/// This pass runs serially per member, so fault decisions keyed by the
/// serial record index are deterministic at any worker count.
fn finalize(world: &MailWorld, feed: &mut Feed, member: &MemberSpec, plan: &FaultPlan, obs: &Obs) {
    let mut local = ShardObs::new(obs.metrics.is_on());
    for rec in member_source_records(world, member, plan, &mut local) {
        apply_source_record(feed, &rec, &mut local);
    }
    obs.metrics.absorb(&local.into_shard());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FeedsConfig, DEFAULT_CHUNK_SIZE};
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::MailConfig;

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 71).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.02)).unwrap()
    }

    fn all_members(cfg: &FeedsConfig) -> Vec<MemberSpec> {
        vec![
            MemberSpec::Mx {
                config: cfg.mx[0],
                index: 0,
            },
            MemberSpec::Mx {
                config: cfg.mx[1],
                index: 1,
            },
            MemberSpec::Mx {
                config: cfg.mx[2],
                index: 2,
            },
            MemberSpec::Ac {
                config: cfg.ac[0],
                index: 0,
            },
            MemberSpec::Ac {
                config: cfg.ac[1],
                index: 1,
            },
            MemberSpec::Bot { config: cfg.bot },
            MemberSpec::Hyb { config: cfg.hyb },
        ]
    }

    fn assert_feeds_equal(a: &Feed, b: &Feed) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.samples, b.samples, "{}", a.id);
        assert_eq!(a.unique_domains(), b.unique_domains(), "{}", a.id);
        assert_eq!(a.unique_fqdns(), b.unique_fqdns(), "{}", a.id);
        for (d, s) in a.iter() {
            assert_eq!(Some(s), b.stats(d), "{} domain {d:?}", a.id);
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::off(w.truth.seed);
        let serial = collect_content(
            &w,
            &members,
            &plan,
            &Parallelism::serial(),
            &Obs::off(),
            DEFAULT_CHUNK_SIZE,
        );
        for workers in [2, 5, 8] {
            let parallel = collect_content(
                &w,
                &members,
                &plan,
                &Parallelism::fixed(workers),
                &Obs::off(),
                DEFAULT_CHUNK_SIZE,
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_feeds_equal(a, b);
            }
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_feeds() {
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::off(w.truth.seed);
        let whole = collect_content(
            &w,
            &members,
            &plan,
            &Parallelism::serial(),
            &Obs::off(),
            usize::MAX,
        );
        for chunk in [1, 7, 64, 4096] {
            for workers in [1, 3] {
                let chunked = collect_content(
                    &w,
                    &members,
                    &plan,
                    &Parallelism::fixed(workers),
                    &Obs::off(),
                    chunk,
                );
                for (a, b) in whole.iter().zip(&chunked) {
                    assert_feeds_equal(a, b);
                }
            }
        }
    }

    #[test]
    fn single_member_run_matches_full_run() {
        // Per-event streams make each member's feed independent of
        // which other members run alongside it.
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::off(w.truth.seed);
        let full = collect_content(
            &w,
            &members,
            &plan,
            &Parallelism::serial(),
            &Obs::off(),
            DEFAULT_CHUNK_SIZE,
        );
        for (i, member) in members.iter().enumerate() {
            let solo = collect_content(
                &w,
                std::slice::from_ref(member),
                &plan,
                &Parallelism::fixed(3),
                &Obs::off(),
                DEFAULT_CHUNK_SIZE,
            );
            assert_feeds_equal(&full[i], &solo[0]);
        }
    }

    #[test]
    fn faulted_run_is_bit_identical_at_any_worker_count() {
        use taster_sim::FaultProfile;
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::new(FaultProfile::lossy_feeds(), w.truth.seed);
        let serial = collect_content(
            &w,
            &members,
            &plan,
            &Parallelism::serial(),
            &Obs::off(),
            DEFAULT_CHUNK_SIZE,
        );
        for (workers, chunk) in [(2, DEFAULT_CHUNK_SIZE), (8, DEFAULT_CHUNK_SIZE), (3, 113)] {
            let parallel = collect_content(
                &w,
                &members,
                &plan,
                &Parallelism::fixed(workers),
                &Obs::off(),
                chunk,
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_feeds_equal(a, b);
            }
        }
        // And the faults actually bite: the lossy profile drops more
        // records than it duplicates, so sample counts shrink.
        let clean = collect_content(
            &w,
            &members,
            &FaultPlan::off(w.truth.seed),
            &Parallelism::serial(),
            &Obs::off(),
            DEFAULT_CHUNK_SIZE,
        );
        let faulted_samples: u64 = serial.iter().filter_map(|f| f.samples).sum();
        let clean_samples: u64 = clean.iter().filter_map(|f| f.samples).sum();
        assert!(faulted_samples < clean_samples);
    }

    #[test]
    fn outage_silences_members_inside_the_window() {
        use taster_sim::fault::Outage;
        use taster_sim::{FaultProfile, SimTime, TimeWindow};
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let mut profile = FaultProfile::off();
        profile.name = "bot-down".to_string();
        profile.outages.push(Outage {
            stage: "Bot".to_string(),
            window: TimeWindow::new(SimTime::ZERO, SimTime(u64::MAX)),
        });
        let plan = FaultPlan::new(profile, w.truth.seed);
        let feeds = collect_content(
            &w,
            &members,
            &plan,
            &Parallelism::fixed(4),
            &Obs::off(),
            DEFAULT_CHUNK_SIZE,
        );
        let clean = collect_content(
            &w,
            &members,
            &FaultPlan::off(w.truth.seed),
            &Parallelism::fixed(4),
            &Obs::off(),
            DEFAULT_CHUNK_SIZE,
        );
        for (f, c) in feeds.iter().zip(&clean) {
            if f.id == FeedId::Bot {
                assert_eq!(f.samples, Some(0), "Bot must be silenced");
                assert_eq!(f.unique_domains(), 0);
            } else {
                // Other members are untouched by Bot's outage.
                assert_feeds_equal(f, c);
            }
        }
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for (n, parts) in [(0, 4), (1, 4), (10, 3), (100, 7), (5, 9)] {
            let ranges = shard_ranges(n, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n, "n={n} parts={parts}");
        }
    }
}
