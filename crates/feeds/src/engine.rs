//! Fused, sharded execution of the content collectors.
//!
//! Seven of the ten feeds (mx1–3, Ac1–2, Bot, Hyb's trap/harvest
//! sources) are *content* collectors: they walk the delivery event
//! log, decide per event whether they captured the copy, render the
//! message, and parse registered domains back out of the text. Run
//! naively that is seven full passes, each rendering its own copy of
//! every captured message.
//!
//! This engine makes the work both shardable and shareable:
//!
//! * **Per-event RNG streams.** Each member's capture decision for
//!   event *i* draws from a stream derived from
//!   `(seed, member name, i)` — a pure function of the event, not of
//!   how many draws earlier events consumed. Feeds stay mutually
//!   independent (changing one member's config cannot perturb
//!   another's draws), and any event-range shard computes exactly the
//!   contribution a serial pass would.
//! * **Shard-and-merge parallelism.** The event log is split into one
//!   contiguous range per worker and merged with [`Feed::merge`],
//!   which is commutative and associative — so the result is
//!   *bit-identical at any worker count*, and identical to the serial
//!   pass.
//! * **One render per delivery.** All members share a single rendered
//!   body per captured event, drawn from a dedicated per-event render
//!   stream (so every member sees the same copy, as in reality, and
//!   rendering is independent of which members captured it). The body
//!   and the URL-extraction results live in buffers reused across
//!   events.

use crate::config::{AcConfig, BotConfig, HybConfig, MxConfig};
use crate::feed::Feed;
use crate::id::FeedId;
use crate::parse::DomainExtractor;
use rand::RngExt;
use std::ops::Range;
use taster_domain::DomainId;
use taster_ecosystem::campaign::{DeliveryVector, TargetClass};
use taster_mailsim::benign::BenignDest;
use taster_mailsim::render::render_spam_into;
use taster_mailsim::MailWorld;
use taster_sim::fault::{truncate_payload, FaultPlan, RecordFault};
use taster_sim::metrics::{Histogram, MetricsShard};
use taster_sim::{Obs, Parallelism, RngStream, TimeWindow};
use taster_smtp::{deliver, HoneypotServer};

/// Stream name for the shared per-event message render.
const RENDER_STREAM: &str = "feeds/render-spam";

/// Bucket edges for the domains-per-captured-record histogram.
const DOMAINS_PER_RECORD_BOUNDS: [u64; 6] = [0, 1, 2, 5, 10, 20];

const LOCALPARTS: &[&str] = &["info", "admin", "bob", "sales", "john", "mary", "office"];

/// One content collector participating in the fused pass.
#[derive(Debug, Clone)]
pub(crate) enum MemberSpec {
    /// MX honeypot `index` (0 = mx1, 1 = mx2, 2 = mx3).
    Mx { config: MxConfig, index: u8 },
    /// Honey-account feed `index` (0 = Ac1, 1 = Ac2).
    Ac { config: AcConfig, index: u8 },
    /// The botnet monitor.
    Bot { config: BotConfig },
    /// The hybrid feed's event-driven sources (trap + harvest).
    Hyb { config: HybConfig },
}

impl MemberSpec {
    fn feed_id(&self) -> FeedId {
        match self {
            MemberSpec::Mx { index, .. } => {
                [FeedId::Mx1, FeedId::Mx2, FeedId::Mx3][*index as usize]
            }
            MemberSpec::Ac { index, .. } => [FeedId::Ac1, FeedId::Ac2][*index as usize],
            MemberSpec::Bot { .. } => FeedId::Bot,
            MemberSpec::Hyb { .. } => FeedId::Hyb,
        }
    }

    fn stream_name(&self) -> String {
        match self {
            MemberSpec::Mx { index, .. } => format!("feeds/mx{}", index + 1),
            MemberSpec::Ac { index, .. } => format!("feeds/ac{}", index + 1),
            MemberSpec::Bot { .. } => "feeds/bot".to_string(),
            MemberSpec::Hyb { .. } => "feeds/hyb".to_string(),
        }
    }

    fn reports_volume(&self) -> bool {
        !matches!(self, MemberSpec::Hyb { .. })
    }

    fn empty_feed(&self) -> Feed {
        let mut feed = Feed::new(self.feed_id(), self.reports_volume());
        feed.samples = Some(0);
        feed
    }
}

/// Runs `members` over the full event log, sharded across `par`'s
/// workers, then applies each member's non-event sources (benign
/// pollution, Hyb's report sample and web-spam corpus).
///
/// Fault decisions come from `plan`, each keyed by
/// `(seed, feed label, event index)` — a pure function of the event,
/// never of shard boundaries — so faulted runs stay bit-identical at
/// any worker count, and an off plan leaves the output untouched.
pub(crate) fn collect_content(
    world: &MailWorld,
    members: &[MemberSpec],
    plan: &FaultPlan,
    par: &Parallelism,
    obs: &Obs,
) -> Vec<Feed> {
    let metrics_on = obs.metrics.is_on();
    let shards = shard_ranges(world.truth.events.len(), par.workers());
    let results = par.par_map(shards, |range| {
        run_shard(world, members, plan, range, metrics_on)
    });

    let mut merged: Vec<Feed> = members.iter().map(MemberSpec::empty_feed).collect();
    let mut metric_shards: Vec<MetricsShard> = Vec::new();
    for (shard, shard_metrics) in results {
        for (acc, piece) in merged.iter_mut().zip(shard) {
            acc.merge(piece);
        }
        metric_shards.push(shard_metrics);
    }
    // Shards come back in event-range order from par_map; merge their
    // metrics in that same order.
    obs.metrics.absorb_in_order(&metric_shards);
    for (feed, member) in merged.iter_mut().zip(members) {
        finalize(world, feed, member, plan, obs);
    }
    merged
}

/// Shard-local observability accumulator: plain integers on the hot
/// path, converted to a [`MetricsShard`] once per shard. When `on` is
/// false every method is branch-and-return, so the unobserved pipeline
/// pays (almost) nothing.
pub(crate) struct ShardObs {
    pub(crate) on: bool,
    pub(crate) events: u64,
    pub(crate) renders: u64,
    pub(crate) captured: u64,
    pub(crate) dropped: u64,
    pub(crate) duplicated: u64,
    pub(crate) truncated: u64,
    pub(crate) outage_skips: u64,
    pub(crate) snapshot_dropped: u64,
    pub(crate) domains_hist: Histogram,
}

impl ShardObs {
    pub(crate) fn new(on: bool) -> ShardObs {
        ShardObs {
            on,
            events: 0,
            renders: 0,
            captured: 0,
            dropped: 0,
            duplicated: 0,
            truncated: 0,
            outage_skips: 0,
            snapshot_dropped: 0,
            domains_hist: Histogram::new(&DOMAINS_PER_RECORD_BOUNDS),
        }
    }

    pub(crate) fn record_fault(&mut self, fault: RecordFault) {
        if !self.on {
            return;
        }
        match fault {
            RecordFault::Deliver => {}
            RecordFault::Drop => self.dropped += 1,
            RecordFault::Duplicate => self.duplicated += 1,
            RecordFault::Truncate => self.truncated += 1,
        }
    }

    pub(crate) fn record_domains(&mut self, n: u64) {
        if self.on {
            self.captured += 1;
            self.domains_hist.observe(n);
        }
    }

    pub(crate) fn into_shard(self) -> MetricsShard {
        let mut shard = MetricsShard::new();
        if !self.on {
            return shard;
        }
        shard.add("collect/events", self.events);
        shard.add("collect/renders", self.renders);
        shard.add("collect/records", self.captured);
        shard.add("collect/fault/dropped", self.dropped);
        shard.add("collect/fault/duplicated", self.duplicated);
        shard.add("collect/fault/truncated", self.truncated);
        shard.add("collect/outage_skips", self.outage_skips);
        shard.add("collect/fault/snapshot_dropped", self.snapshot_dropped);
        if self.domains_hist.total() > 0 {
            shard.merge_histogram("collect/domains_per_record", &self.domains_hist);
        }
        shard
    }
}

/// Splits `0..n` into up to `parts` contiguous ranges of near-equal
/// size. The split only affects scheduling: shard outputs merge to the
/// same feeds wherever the boundaries fall.
fn shard_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut start = 0;
    (0..parts)
        .map(|i| {
            let len = base + usize::from(i < extra);
            let range = start..start + len;
            start += len;
            range
        })
        .collect()
}

/// The per-shard state of one MX member's SMTP sink.
struct MxSession {
    server: HoneypotServer,
    trap_domain: String,
}

impl MxSession {
    fn open(index: u8) -> MxSession {
        // The honeypot's accept-everything SMTP sink. Spam cannons
        // hold connections open and pipeline transactions, so one
        // long-lived session per shard suffices.
        let trap_domain = format!("quiet-portfolio-mx{}.com", index + 1);
        let (server, greeting) = HoneypotServer::connect(format!("mx.{trap_domain}"));
        debug_assert_eq!(greeting.code, 220);
        MxSession {
            server,
            trap_domain,
        }
    }
}

fn run_shard(
    world: &MailWorld,
    members: &[MemberSpec],
    plan: &FaultPlan,
    range: Range<usize>,
    metrics_on: bool,
) -> (Vec<Feed>, MetricsShard) {
    let mut shard_obs = ShardObs::new(metrics_on);
    shard_obs.events = range.len() as u64;
    let seed = world.truth.seed;
    let truth = &world.truth;
    let extractor = DomainExtractor::new();
    let monitored: Vec<bool> = truth.botnets.iter().map(|b| b.monitored).collect();

    let mut feeds: Vec<Feed> = members.iter().map(MemberSpec::empty_feed).collect();
    let names: Vec<String> = members.iter().map(MemberSpec::stream_name).collect();
    let labels: Vec<&'static str> = members.iter().map(|m| m.feed_id().label()).collect();
    let outages: Vec<Vec<TimeWindow>> = labels
        .iter()
        .map(|label| plan.outage_windows(label))
        .collect();
    let faults_on = !plan.is_off();
    let bases: Vec<RngStream> = names.iter().map(|n| RngStream::new(seed, n)).collect();
    let render_base = RngStream::new(seed, RENDER_STREAM);
    let mut sessions: Vec<Option<MxSession>> = members
        .iter()
        .map(|m| match m {
            MemberSpec::Mx { index, .. } => Some(MxSession::open(*index)),
            _ => None,
        })
        .collect();

    // Buffers reused across every event in the shard.
    let mut body = String::with_capacity(512);
    let mut extracted: Vec<(DomainId, u64)> = Vec::new();
    let mut truncated_scratch: Vec<(DomainId, u64)> = Vec::new();

    for i in range {
        let event = &truth.events[i];
        let mut rendered = None;
        let mut extracted_ready = false;
        for (m, member) in members.iter().enumerate() {
            // A collector that is down records nothing. Checked before
            // any stream is derived: per-event child streams mean the
            // skip cannot perturb other events' draws.
            if faults_on && outages[m].iter().any(|w| w.contains(event.time)) {
                if shard_obs.on {
                    shard_obs.outage_skips += 1;
                }
                continue;
            }
            // Cheap structural filter first; the RNG stream is only
            // derived for eligible (member, event) pairs.
            let capture_prob = match member {
                MemberSpec::Mx { config, index } => {
                    if event.target != TargetClass::BruteForce {
                        continue;
                    }
                    if truth.campaign(event.campaign).brute_mask & (1u8 << index) == 0 {
                        continue;
                    }
                    config.capture_prob
                }
                MemberSpec::Ac { config, .. } => {
                    let TargetClass::Harvested(vector) = event.target else {
                        continue;
                    };
                    if config.vector_mask & (1 << vector) == 0 {
                        continue;
                    }
                    config.capture_prob
                }
                MemberSpec::Bot { config } => {
                    let DeliveryVector::Botnet(b) = event.delivery else {
                        continue;
                    };
                    if !monitored.get(b.index()).copied().unwrap_or(false) {
                        continue;
                    }
                    config.capture_prob
                }
                MemberSpec::Hyb { config } => match event.target {
                    // The Hyb trap's addresses only ever leaked into
                    // the older direct-spammer lists, so it misses the
                    // botnet blasts — part of why Hyb's mail-volume
                    // coverage is so poor despite its domain breadth
                    // (§4.2.2).
                    TargetClass::BruteForce if matches!(event.delivery, DeliveryVector::Direct) => {
                        config.trap_prob
                    }
                    TargetClass::Harvested(v) if v == config.harvest_vector => config.harvest_prob,
                    _ => continue,
                },
            };
            let mut rng = bases[m].child(seed, &names[m], i as u64);
            if !rng.random_bool(capture_prob) {
                continue;
            }

            // Fault disposition for the captured record, keyed by
            // (seed, feed label, event index). A dropped record is
            // lost before the collector logs anything.
            let fault = if faults_on {
                plan.record_fault(labels[m], i as u64)
            } else {
                RecordFault::Deliver
            };
            shard_obs.record_fault(fault);
            if fault == RecordFault::Drop {
                continue;
            }
            let copies = if fault == RecordFault::Duplicate {
                2
            } else {
                1
            };

            // First capturing member triggers the event's render; the
            // body is a pure function of (seed, event), so every
            // member sees the same copy.
            if shard_obs.on && rendered.is_none() {
                shard_obs.renders += 1;
            }
            let headers = rendered.get_or_insert_with(|| {
                let mut render_rng = render_base.child(seed, RENDER_STREAM, i as u64);
                extracted_ready = false;
                render_spam_into(
                    &mut body,
                    truth,
                    event.advertised,
                    event.chaff,
                    event.time,
                    &mut render_rng,
                )
            });

            let feed = &mut feeds[m];
            match member {
                MemberSpec::Mx { .. } => {
                    // Every MX member opened a session above; a missing
                    // one means the record cannot be delivered, so it is
                    // skipped rather than crashing the shard.
                    let Some(session) = sessions[m].as_mut() else {
                        continue;
                    };
                    // Drive the SMTP dialogue: brute-force lists guess
                    // popular localparts at every domain with a valid
                    // MX. Post-capture draws continue on the member's
                    // per-event stream.
                    let rcpt = format!(
                        "{}@{}",
                        LOCALPARTS[rng.random_range(0..LOCALPARTS.len())],
                        session.trap_domain
                    );
                    let helo = format!("host{}.sender.example", rng.random_range(0..1000u32));
                    // The honeypot accepts everything; a rejected
                    // transaction is a lost record, not a crash.
                    if deliver(
                        &mut session.server,
                        &helo,
                        headers.from_addr(&body),
                        &[rcpt],
                        &body,
                    )
                    .is_err()
                    {
                        continue;
                    }
                    let Some(stored) = session.server.drain_stored().pop() else {
                        continue;
                    };
                    // A real MX sink parses the *stored* message — the
                    // copy that survived the protocol state machine. A
                    // truncated record lost the tail of that copy.
                    let data = if fault == RecordFault::Truncate {
                        truncate_payload(&stored.data)
                    } else {
                        &stored.data
                    };
                    for _ in 0..copies {
                        feed.count_sample();
                        let mut parsed = 0u64;
                        for (d, host) in
                            extractor.registered_domains_with_hosts(data, &truth.universe.table)
                        {
                            feed.record(d, event.time);
                            feed.note_fqdn(host);
                            parsed += 1;
                        }
                        shard_obs.record_domains(parsed);
                    }
                }
                _ => {
                    let records: &[(DomainId, u64)] = if fault == RecordFault::Truncate {
                        // Parse the surviving half of the payload.
                        truncated_scratch.clear();
                        extractor.registered_domains_into(
                            truncate_payload(&body),
                            &truth.universe.table,
                            &mut truncated_scratch,
                        );
                        &truncated_scratch
                    } else {
                        if !extracted_ready {
                            extracted.clear();
                            extractor.registered_domains_into(
                                &body,
                                &truth.universe.table,
                                &mut extracted,
                            );
                            extracted_ready = true;
                        }
                        &extracted
                    };
                    for _ in 0..copies {
                        feed.count_sample();
                        for &(d, host) in records {
                            feed.record(d, event.time);
                            feed.note_fqdn(host);
                        }
                        shard_obs.record_domains(records.len() as u64);
                    }
                }
            }
        }
    }
    (feeds, shard_obs.into_shard())
}

/// Applies a member's non-event sources after the sharded event pass.
///
/// This pass runs serially per member, so fault decisions keyed by the
/// serial record index are deterministic at any worker count.
fn finalize(world: &MailWorld, feed: &mut Feed, member: &MemberSpec, plan: &FaultPlan, obs: &Obs) {
    let mut local = ShardObs::new(obs.metrics.is_on());
    let faults_on = !plan.is_off();
    let label = member.feed_id().label();
    let down = |t| faults_on && plan.outage_at(label, t);
    match member {
        MemberSpec::Mx { index, .. } => {
            // Legitimate pollution addressed to this honeypot.
            for mail in &world.benign_mail {
                if mail.dest == BenignDest::MxHoneypot(*index) && !down(mail.time) {
                    feed.count_sample();
                    for &d in &mail.domains {
                        feed.record(d, mail.time);
                    }
                    local.record_domains(mail.domains.len() as u64);
                }
            }
        }
        MemberSpec::Ac { index, .. } => {
            for mail in &world.benign_mail {
                if mail.dest == BenignDest::HoneyAccounts(*index) && !down(mail.time) {
                    feed.count_sample();
                    for &d in &mail.domains {
                        feed.record(d, mail.time);
                    }
                    local.record_domains(mail.domains.len() as u64);
                }
            }
        }
        MemberSpec::Bot { .. } => {}
        MemberSpec::Hyb { config } => {
            let seed = world.truth.seed;
            // Partner sample of user reports.
            let mut rng = RngStream::new(seed, "feeds/hyb/reports");
            for (idx, report) in world.provider.reports.iter().enumerate() {
                if !rng.random_bool(config.report_sample_prob) || down(report.time) {
                    continue;
                }
                let fault = if faults_on {
                    plan.record_fault("Hyb/reports", idx as u64)
                } else {
                    RecordFault::Deliver
                };
                local.record_fault(fault);
                if fault == RecordFault::Drop {
                    continue;
                }
                let copies = if fault == RecordFault::Duplicate {
                    2
                } else {
                    1
                };
                // A truncated report record lost the tail of its
                // pre-extracted domain list.
                let keep = if fault == RecordFault::Truncate {
                    report.domains.len() / 2
                } else {
                    report.domains.len()
                };
                for _ in 0..copies {
                    feed.count_sample();
                    for &d in &report.domains[..keep] {
                        feed.record(d, report.time);
                    }
                    local.record_domains(keep as u64);
                }
            }
            // The non-e-mail web-spam corpus.
            let mut rng = RngStream::new(seed, "feeds/hyb/webspam");
            for (idx, &(time, domain)) in world.truth.webspam.iter().enumerate() {
                if !rng.random_bool(config.webspam_prob) || down(time) {
                    continue;
                }
                // Single-domain entries: truncation leaves nothing to
                // cut, so only drop/duplicate apply.
                let fault = if faults_on {
                    plan.record_fault("Hyb/webspam", idx as u64)
                } else {
                    RecordFault::Deliver
                };
                local.record_fault(fault);
                if fault == RecordFault::Drop {
                    continue;
                }
                let copies = if fault == RecordFault::Duplicate {
                    2
                } else {
                    1
                };
                for _ in 0..copies {
                    feed.count_sample();
                    feed.record(domain, time);
                    local.record_domains(1);
                }
            }
        }
    }
    obs.metrics.absorb(&local.into_shard());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FeedsConfig;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::MailConfig;

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 71).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.02)).unwrap()
    }

    fn all_members(cfg: &FeedsConfig) -> Vec<MemberSpec> {
        vec![
            MemberSpec::Mx {
                config: cfg.mx[0],
                index: 0,
            },
            MemberSpec::Mx {
                config: cfg.mx[1],
                index: 1,
            },
            MemberSpec::Mx {
                config: cfg.mx[2],
                index: 2,
            },
            MemberSpec::Ac {
                config: cfg.ac[0],
                index: 0,
            },
            MemberSpec::Ac {
                config: cfg.ac[1],
                index: 1,
            },
            MemberSpec::Bot { config: cfg.bot },
            MemberSpec::Hyb { config: cfg.hyb },
        ]
    }

    fn assert_feeds_equal(a: &Feed, b: &Feed) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.samples, b.samples, "{}", a.id);
        assert_eq!(a.unique_domains(), b.unique_domains(), "{}", a.id);
        assert_eq!(a.unique_fqdns(), b.unique_fqdns(), "{}", a.id);
        for (d, s) in a.iter() {
            assert_eq!(Some(s), b.stats(d), "{} domain {d:?}", a.id);
        }
    }

    #[test]
    fn sharded_run_is_bit_identical_to_serial() {
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::off(w.truth.seed);
        let serial = collect_content(&w, &members, &plan, &Parallelism::serial(), &Obs::off());
        for workers in [2, 5, 8] {
            let parallel = collect_content(
                &w,
                &members,
                &plan,
                &Parallelism::fixed(workers),
                &Obs::off(),
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_feeds_equal(a, b);
            }
        }
    }

    #[test]
    fn single_member_run_matches_full_run() {
        // Per-event streams make each member's feed independent of
        // which other members run alongside it.
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::off(w.truth.seed);
        let full = collect_content(&w, &members, &plan, &Parallelism::serial(), &Obs::off());
        for (i, member) in members.iter().enumerate() {
            let solo = collect_content(
                &w,
                std::slice::from_ref(member),
                &plan,
                &Parallelism::fixed(3),
                &Obs::off(),
            );
            assert_feeds_equal(&full[i], &solo[0]);
        }
    }

    #[test]
    fn faulted_run_is_bit_identical_at_any_worker_count() {
        use taster_sim::FaultProfile;
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let plan = FaultPlan::new(FaultProfile::lossy_feeds(), w.truth.seed);
        let serial = collect_content(&w, &members, &plan, &Parallelism::serial(), &Obs::off());
        for workers in [2, 8] {
            let parallel = collect_content(
                &w,
                &members,
                &plan,
                &Parallelism::fixed(workers),
                &Obs::off(),
            );
            for (a, b) in serial.iter().zip(&parallel) {
                assert_feeds_equal(a, b);
            }
        }
        // And the faults actually bite: the lossy profile drops more
        // records than it duplicates, so sample counts shrink.
        let clean = collect_content(
            &w,
            &members,
            &FaultPlan::off(w.truth.seed),
            &Parallelism::serial(),
            &Obs::off(),
        );
        let faulted_samples: u64 = serial.iter().filter_map(|f| f.samples).sum();
        let clean_samples: u64 = clean.iter().filter_map(|f| f.samples).sum();
        assert!(faulted_samples < clean_samples);
    }

    #[test]
    fn outage_silences_members_inside_the_window() {
        use taster_sim::fault::Outage;
        use taster_sim::{FaultProfile, SimTime, TimeWindow};
        let w = world();
        let cfg = FeedsConfig::default();
        let members = all_members(&cfg);
        let mut profile = FaultProfile::off();
        profile.name = "bot-down".to_string();
        profile.outages.push(Outage {
            stage: "Bot".to_string(),
            window: TimeWindow::new(SimTime::ZERO, SimTime(u64::MAX)),
        });
        let plan = FaultPlan::new(profile, w.truth.seed);
        let feeds = collect_content(&w, &members, &plan, &Parallelism::fixed(4), &Obs::off());
        let clean = collect_content(
            &w,
            &members,
            &FaultPlan::off(w.truth.seed),
            &Parallelism::fixed(4),
            &Obs::off(),
        );
        for (f, c) in feeds.iter().zip(&clean) {
            if f.id == FeedId::Bot {
                assert_eq!(f.samples, Some(0), "Bot must be silenced");
                assert_eq!(f.unique_domains(), 0);
            } else {
                // Other members are untouched by Bot's outage.
                assert_feeds_equal(f, c);
            }
        }
    }

    #[test]
    fn shard_ranges_cover_exactly() {
        for (n, parts) in [(0, 4), (1, 4), (10, 3), (100, 7), (5, 9)] {
            let ranges = shard_ranges(n, parts);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                next = r.end;
            }
            assert_eq!(next, n, "n={n} parts={parts}");
        }
    }
}
