//! Columnar per-feed domain storage.
//!
//! Ingestion accumulates per-domain stats in a hash map (events arrive
//! in arbitrary domain order), but every analysis that follows is a
//! scan or a set operation. [`FeedColumns`] is the post-collection
//! layout: domain ids sorted ascending with `first_seen` / `last_seen`
//! / `volume` as parallel columns, plus a membership [`DomainBitset`]
//! and a [`RankIndex`] so point lookups (`stats`, `contains`) cost one
//! word probe + popcount instead of a SipHash probe, and whole-feed
//! unions/intersections run as word-level kernels.

use crate::feed::DomainStats;
use taster_domain::fx::FxHashMap;
use taster_domain::{DomainBitset, DomainId, RankIndex};
use taster_sim::SimTime;

/// One feed's domains as sorted parallel columns + membership bitset.
#[derive(Debug, Clone, Default)]
pub struct FeedColumns {
    ids: Vec<DomainId>,
    first_seen: Vec<SimTime>,
    last_seen: Vec<SimTime>,
    volume: Vec<u64>,
    members: DomainBitset,
    rank: RankIndex,
}

impl FeedColumns {
    /// Freezes an ingestion map into sorted columns.
    pub fn from_map(map: FxHashMap<DomainId, DomainStats>) -> FeedColumns {
        let mut rows: Vec<(DomainId, DomainStats)> = map.into_iter().collect();
        rows.sort_unstable_by_key(|&(d, _)| d);
        let mut cols = FeedColumns {
            ids: Vec::with_capacity(rows.len()),
            first_seen: Vec::with_capacity(rows.len()),
            last_seen: Vec::with_capacity(rows.len()),
            volume: Vec::with_capacity(rows.len()),
            members: DomainBitset::with_capacity(rows.last().map_or(0, |&(d, _)| d.index() + 1)),
            rank: RankIndex::default(),
        };
        for (d, s) in rows {
            cols.ids.push(d);
            cols.first_seen.push(s.first_seen);
            cols.last_seen.push(s.last_seen);
            cols.volume.push(s.volume);
            cols.members.insert(d);
        }
        cols.rank = RankIndex::build(&cols.members);
        cols
    }

    /// Number of distinct domains.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the feed carried nothing.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Membership test (one word probe).
    pub fn contains(&self, domain: DomainId) -> bool {
        self.members.contains(domain)
    }

    /// The row index of `domain`, if present.
    pub fn row_of(&self, domain: DomainId) -> Option<usize> {
        self.rank.rank(&self.members, domain)
    }

    /// Stats for one domain — O(1) rank lookup, no hashing.
    pub fn stats(&self, domain: DomainId) -> Option<DomainStats> {
        self.row_of(domain).map(|i| DomainStats {
            first_seen: self.first_seen[i],
            last_seen: self.last_seen[i],
            volume: self.volume[i],
        })
    }

    /// Iterates `(domain, stats)` in ascending domain order.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, DomainStats)> + '_ {
        self.ids.iter().enumerate().map(|(i, &d)| {
            (
                d,
                DomainStats {
                    first_seen: self.first_seen[i],
                    last_seen: self.last_seen[i],
                    volume: self.volume[i],
                },
            )
        })
    }

    /// Domain ids, ascending.
    pub fn ids(&self) -> &[DomainId] {
        &self.ids
    }

    /// First-seen column, aligned with [`FeedColumns::ids`].
    pub fn first_seen(&self) -> &[SimTime] {
        &self.first_seen
    }

    /// Last-seen column, aligned with [`FeedColumns::ids`].
    pub fn last_seen(&self) -> &[SimTime] {
        &self.last_seen
    }

    /// Volume column, aligned with [`FeedColumns::ids`].
    pub fn volumes(&self) -> &[u64] {
        &self.volume
    }

    /// The membership bitset (for word-level set algebra).
    pub fn members(&self) -> &DomainBitset {
        &self.members
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FeedColumns {
        let mut map: FxHashMap<DomainId, DomainStats> = FxHashMap::default();
        for &(d, f, l, v) in &[(70u32, 3u64, 9u64, 4u64), (2, 1, 1, 1), (64, 5, 5, 2)] {
            map.insert(
                DomainId(d),
                DomainStats {
                    first_seen: SimTime(f),
                    last_seen: SimTime(l),
                    volume: v,
                },
            );
        }
        FeedColumns::from_map(map)
    }

    #[test]
    fn columns_are_sorted_and_aligned() {
        let cols = sample();
        assert_eq!(cols.len(), 3);
        assert_eq!(cols.ids(), &[DomainId(2), DomainId(64), DomainId(70)]);
        assert_eq!(cols.volumes(), &[1, 2, 4]);
        let rows: Vec<_> = cols.iter().map(|(d, s)| (d.0, s.volume)).collect();
        assert_eq!(rows, vec![(2, 1), (64, 2), (70, 4)]);
    }

    #[test]
    fn point_lookups_match_columns() {
        let cols = sample();
        assert!(cols.contains(DomainId(64)));
        assert!(!cols.contains(DomainId(63)));
        assert_eq!(cols.row_of(DomainId(70)), Some(2));
        let s = cols.stats(DomainId(70)).unwrap();
        assert_eq!(
            (s.first_seen, s.last_seen, s.volume),
            (SimTime(3), SimTime(9), 4)
        );
        assert_eq!(cols.stats(DomainId(1)), None);
        assert_eq!(cols.members().len(), 3);
    }
}
