//! Message-to-domains reduction.
//!
//! Full-content collectors receive message text; the common
//! denominator across feeds is the *registered domain* (§3). This
//! module performs that reduction: scan the body for URLs, validate
//! hosts, reduce to registered domains, resolve them against the
//! domain table. Unknown domains (not in the simulated universe) are
//! dropped — they cannot occur in a well-formed simulation, and the
//! debug assertion flags the pipeline bug if they ever do.

use taster_domain::psl::SuffixList;
use taster_domain::url::extract_urls;
use taster_domain::{DomainId, DomainTable};

/// A reusable extractor (owns the compiled suffix list).
#[derive(Debug, Clone)]
pub struct DomainExtractor {
    psl: SuffixList,
}

impl Default for DomainExtractor {
    fn default() -> Self {
        Self::new()
    }
}

impl DomainExtractor {
    /// Builds an extractor with the built-in suffix rules.
    pub fn new() -> DomainExtractor {
        DomainExtractor {
            psl: SuffixList::builtin(),
        }
    }

    /// Extracts the registered domains advertised in `body`, resolved
    /// against `table`, deduplicated, in order of first appearance.
    pub fn registered_domains(&self, body: &str, table: &DomainTable) -> Vec<DomainId> {
        self.registered_domains_with_hosts(body, table)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Like [`Self::registered_domains`] but also returns a stable
    /// 64-bit hash of each fully-qualified hostname — URL-granularity
    /// feeds track distinct FQDNs through these (the paper's §3.1
    /// point: spammers mint arbitrary names *below* the registered
    /// domain, so FQDN-level blacklisting is futile).
    pub fn registered_domains_with_hosts(
        &self,
        body: &str,
        table: &DomainTable,
    ) -> Vec<(DomainId, u64)> {
        let mut out = Vec::new();
        self.registered_domains_into(body, table, &mut out);
        out
    }

    /// [`Self::registered_domains_with_hosts`] into a caller-owned
    /// buffer (appended to), for hot loops that reuse one allocation
    /// across messages.
    pub fn registered_domains_into(
        &self,
        body: &str,
        table: &DomainTable,
        out: &mut Vec<(DomainId, u64)>,
    ) {
        let start = out.len();
        for url in extract_urls(body) {
            let Some(reg) = self.psl.registered_domain(&url.host) else {
                continue;
            };
            let Some(id) = table.get(reg.as_str()) else {
                debug_assert!(false, "unknown domain {} in rendered body", reg);
                continue;
            };
            let hash = fnv64(url.host.as_str().as_bytes());
            if !out[start..].iter().any(|&(d, _)| d == id) {
                out.push((id, hash));
            }
        }
    }
}

impl DomainExtractor {
    /// True when `text` round-trips host parsing unchanged and is its
    /// own registered domain. This is the precondition for the
    /// render-free fast path: prefixing any of the renderer's
    /// subdomain labels then reduces `prefix ++ text` back to exactly
    /// `text` (suffix matching is right-anchored, and a generated
    /// label cannot extend a public-suffix rule leftwards).
    pub fn fast_reducible(&self, text: &str) -> bool {
        let Ok(name) = taster_domain::DomainName::parse(text) else {
            return false;
        };
        name.as_str() == text
            && self
                .psl
                .registered_domain(&name)
                .is_some_and(|r| r.as_str() == text)
    }
}

/// FNV-1a, the stable hostname hash used for FQDN cardinality.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// [`fnv64`] over the concatenation of `parts`, allocation-free —
/// hashes `sub ++ domain` hosts without building the host string.
pub fn fnv64_parts(parts: &[&[u8]]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for part in parts {
        for &b in *part {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_and_dedupes() {
        let mut table = DomainTable::new();
        let a = table.intern_str("pills.com");
        let b = table.intern_str("chaff.org");
        let body = "buy http://www.pills.com/x and http://pills.com/y \
                    via http://sub.chaff.org/";
        let ex = DomainExtractor::new();
        assert_eq!(ex.registered_domains(body, &table), vec![a, b]);
    }

    #[test]
    fn handles_multi_label_suffixes() {
        let mut table = DomainTable::new();
        let a = table.intern_str("shop.co.uk");
        let ex = DomainExtractor::new();
        let got = ex.registered_domains("see http://www.shop.co.uk/sale", &table);
        assert_eq!(got, vec![a]);
    }

    #[test]
    fn ignores_bodies_without_urls() {
        let table = DomainTable::new();
        let ex = DomainExtractor::new();
        assert!(ex.registered_domains("no links here", &table).is_empty());
    }
}
