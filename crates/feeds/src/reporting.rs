//! Reporting policies: what the provider actually ships.
//!
//! "Sometimes data is reported in raw form, with a data record for
//! each and every spam message, but in other cases providers aggregate
//! and summarize. For example, some providers will de-duplicate
//! identically advertised domains within a given time window" (§2).
//! A policy sits between observation and the feed's recorded volume;
//! it is what makes volume columns comparable-or-not across feeds.

use taster_sim::SimTime;

/// How a provider reports observations of one domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportingPolicy {
    /// One record per message (raw feeds: honeypots, botnet output).
    Raw,
    /// At most one record per domain per window of `secs` seconds
    /// (aggregating providers).
    DedupWindow {
        /// Window length in seconds.
        secs: u64,
    },
    /// A single listing record per domain, ever (blacklists).
    BinaryListing,
}

impl ReportingPolicy {
    /// Whether an observation at `time` produces a record, given the
    /// time of the domain's previous record (`None` when first).
    pub fn emits(&self, previous: Option<SimTime>, time: SimTime) -> bool {
        match (*self, previous) {
            (_, None) => true,
            (ReportingPolicy::Raw, _) => true,
            (ReportingPolicy::DedupWindow { secs }, Some(prev)) => {
                time.secs() >= prev.secs().saturating_add(secs)
            }
            (ReportingPolicy::BinaryListing, Some(_)) => false,
        }
    }

    /// Whether records under this policy carry meaningful volume.
    pub fn preserves_volume(&self) -> bool {
        matches!(self, ReportingPolicy::Raw)
    }
}

/// Tracks per-domain record emission under a policy.
#[derive(Debug, Clone, Default)]
pub struct PolicyState {
    last_record: taster_domain::fx::FxHashMap<taster_domain::DomainId, SimTime>,
}

impl PolicyState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies the policy to one observation; returns `true` when a
    /// record is emitted (and remembers it).
    pub fn observe(
        &mut self,
        policy: ReportingPolicy,
        domain: taster_domain::DomainId,
        time: SimTime,
    ) -> bool {
        let previous = self.last_record.get(&domain).copied();
        if policy.emits(previous, time) {
            self.last_record.insert(domain, time);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_domain::DomainId;
    use taster_sim::{SimTime, DAY, HOUR};

    #[test]
    fn raw_emits_everything() {
        let mut st = PolicyState::new();
        let d = DomainId(1);
        for t in [0, 1, 1, 2] {
            assert!(st.observe(ReportingPolicy::Raw, d, SimTime(t)));
        }
    }

    #[test]
    fn binary_listing_emits_once() {
        let mut st = PolicyState::new();
        let d = DomainId(1);
        assert!(st.observe(ReportingPolicy::BinaryListing, d, SimTime(5)));
        for t in [6, 100, 10_000] {
            assert!(!st.observe(ReportingPolicy::BinaryListing, d, SimTime(t)));
        }
        // Other domains are independent.
        assert!(st.observe(ReportingPolicy::BinaryListing, DomainId(2), SimTime(6)));
    }

    #[test]
    fn window_dedup_emits_once_per_window() {
        let mut st = PolicyState::new();
        let d = DomainId(9);
        let p = ReportingPolicy::DedupWindow { secs: DAY };
        assert!(st.observe(p, d, SimTime(0)));
        assert!(!st.observe(p, d, SimTime(HOUR)));
        assert!(!st.observe(p, d, SimTime(DAY - 1)));
        assert!(st.observe(p, d, SimTime(DAY)));
        assert!(!st.observe(p, d, SimTime(DAY + HOUR)));
        assert!(st.observe(p, d, SimTime(3 * DAY)));
    }

    #[test]
    fn volume_preservation_flags() {
        assert!(ReportingPolicy::Raw.preserves_volume());
        assert!(!ReportingPolicy::DedupWindow { secs: DAY }.preserves_volume());
        assert!(!ReportingPolicy::BinaryListing.preserves_volume());
    }

    /// Window dedup flattens the volume distribution: the paper's
    /// warning that aggregated feeds cannot answer proportionality
    /// questions (§4.3 uses only raw feeds).
    #[test]
    fn dedup_destroys_proportionality_information() {
        use taster_stats::kendall::kendall_tau_b_counts;
        let p = ReportingPolicy::DedupWindow { secs: DAY };
        // Domain 0 is 100x louder than domain 9, all within 3 days.
        let mut raw = [0u64; 10];
        let mut deduped = [0u64; 10];
        let mut st = PolicyState::new();
        for d in 0..10u32 {
            let copies = if d == 0 { 300 } else { 3 };
            for i in 0..copies {
                let t = SimTime((i as u64 * 3 * DAY) / copies as u64);
                raw[d as usize] += 1;
                if st.observe(p, DomainId(d), t) {
                    deduped[d as usize] += 1;
                }
            }
        }
        assert_eq!(raw[0], 300);
        assert!(deduped[0] <= 3, "loud domain collapses to one record/day");
        // Raw counts rank perfectly against themselves; deduped counts
        // are nearly ties and lose the ranking signal.
        let truth: Vec<u64> = raw.to_vec();
        let tau_raw = kendall_tau_b_counts(&truth, &raw).unwrap();
        assert!((tau_raw - 1.0).abs() < 1e-12);
        let tau_dedup = kendall_tau_b_counts(&truth, &deduped).unwrap_or(0.0);
        assert!(
            tau_dedup < tau_raw,
            "dedup weakens rank fidelity: {tau_dedup}"
        );
    }
}
