//! The ten collectors.
//!
//! Each collector is a pure function of the [`MailWorld`] plus its own
//! named RNG stream, producing one [`Feed`]. Collectors never touch
//! ground-truth labels they could not observe in reality: full-content
//! collectors parse rendered message text; blacklists observe domain
//! *advertisement activity* (their upstream trap networks) but apply
//! their own curation.

pub mod ac;
pub mod blacklist;
pub mod bot;
pub mod hu;
pub mod hyb;
pub mod mx;

pub use ac::collect_ac;
pub use blacklist::{collect_blacklist, collect_blacklist_observed};
pub use bot::collect_bot;
pub use hu::{collect_hu, collect_hu_observed};
pub use hyb::collect_hyb;
pub use mx::collect_mx;

#[allow(unused_imports)]
use crate::feed::Feed;
#[allow(unused_imports)]
use taster_mailsim::MailWorld;
