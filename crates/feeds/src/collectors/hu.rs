//! Human-identified collector (`Hu`).
//!
//! The provider hands over the messages its users flagged. The feed is
//! raw (one record per report, all URLs included) but its *volume* is
//! not a delivery volume — it is a report volume, distorted by
//! human-time delays and by the provider's own filtering feedback —
//! so the paper excludes it from proportionality analysis, and so do
//! we (`reports_volume == false`).

use crate::engine::{apply_source_record, ShardObs, SourceRecord};
use crate::feed::Feed;
use crate::id::FeedId;
use taster_mailsim::MailWorld;
use taster_sim::fault::RecordFault;
use taster_sim::{FaultPlan, Obs};

/// Collects the `Hu` feed from the provider's report stream.
///
/// This collector is serial, so fault decisions keyed by the report
/// index are deterministic at any worker count.
pub fn collect_hu(world: &MailWorld, plan: &FaultPlan) -> Feed {
    collect_hu_observed(world, plan, &Obs::off())
}

/// [`collect_hu`] with observability: counts captured records, fault
/// decisions and domains-per-record into `obs`. Accumulation is local
/// and absorbed once, so the metrics totals match a serial pass.
pub fn collect_hu_observed(world: &MailWorld, plan: &FaultPlan, obs: &Obs) -> Feed {
    let mut local = ShardObs::new(obs.metrics.is_on());
    let mut feed = Feed::new(FeedId::Hu, false);
    feed.samples = Some(0);
    for rec in hu_source_records(world, plan, &mut local) {
        apply_source_record(&mut feed, &rec, &mut local);
    }
    obs.metrics.absorb(&local.into_shard());
    feed
}

/// Pre-decides the Hu feed's records: every fault decision (keyed by
/// the serial report index) happens here, so the records are a pure
/// function of `(world, plan)` and can be applied in any order — all
/// at once by [`collect_hu_observed`], or incrementally by the serve
/// daemon's time cursor.
pub(crate) fn hu_source_records(
    world: &MailWorld,
    plan: &FaultPlan,
    local: &mut ShardObs,
) -> Vec<SourceRecord> {
    let faults_on = !plan.is_off();
    let label = FeedId::Hu.label();
    let mut out = Vec::new();
    for (idx, report) in world.provider.reports.iter().enumerate() {
        if faults_on && plan.outage_at(label, report.time) {
            if local.on {
                local.outage_skips += 1;
            }
            continue;
        }
        let fault = if faults_on {
            plan.record_fault(label, idx as u64)
        } else {
            RecordFault::Deliver
        };
        local.record_fault(fault);
        if fault == RecordFault::Drop {
            continue;
        }
        let copies = if fault == RecordFault::Duplicate {
            2
        } else {
            1
        };
        // A truncated report record lost the tail of its domain list.
        let keep = if fault == RecordFault::Truncate {
            report.domains.len() / 2
        } else {
            report.domains.len()
        };
        out.push(SourceRecord {
            time: report.time,
            copies,
            counts_sample: true,
            domains: report.domains[..keep].to_vec(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_hu;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};
    use taster_sim::FaultPlan;

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 53).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03)).unwrap()
    }

    #[test]
    fn hu_matches_report_stream() {
        let w = world();
        let feed = collect_hu(&w, &FaultPlan::off(w.truth.seed));
        assert_eq!(feed.samples, Some(w.provider.reports.len() as u64));
        assert!(!feed.reports_volume);
        assert!(feed.unique_domains() > 0);
    }

    #[test]
    fn lossy_plan_shrinks_the_feed() {
        use taster_sim::FaultProfile;
        let w = world();
        let clean = collect_hu(&w, &FaultPlan::off(w.truth.seed));
        let lossy = collect_hu(
            &w,
            &FaultPlan::new(FaultProfile::lossy_feeds(), w.truth.seed),
        );
        assert!(lossy.samples < clean.samples);
        // Deterministic: the same plan reproduces the same feed.
        let again = collect_hu(
            &w,
            &FaultPlan::new(FaultProfile::lossy_feeds(), w.truth.seed),
        );
        assert_eq!(lossy.samples, again.samples);
        assert_eq!(lossy.unique_domains(), again.unique_domains());
    }

    #[test]
    fn report_times_not_delivery_times() {
        let w = world();
        let feed = collect_hu(&w, &FaultPlan::off(w.truth.seed));
        // Every recorded first_seen equals some report time, which
        // trails delivery by the human delay.
        let report_times: std::collections::HashSet<_> =
            w.provider.reports.iter().map(|r| r.time).collect();
        let mut checked = 0;
        for (_, s) in feed.iter().take(200) {
            assert!(report_times.contains(&s.first_seen));
            checked += 1;
        }
        assert!(checked > 0);
    }
}
