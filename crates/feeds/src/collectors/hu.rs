//! Human-identified collector (`Hu`).
//!
//! The provider hands over the messages its users flagged. The feed is
//! raw (one record per report, all URLs included) but its *volume* is
//! not a delivery volume — it is a report volume, distorted by
//! human-time delays and by the provider's own filtering feedback —
//! so the paper excludes it from proportionality analysis, and so do
//! we (`reports_volume == false`).

use crate::feed::Feed;
use crate::id::FeedId;
use taster_mailsim::MailWorld;

/// Collects the `Hu` feed from the provider's report stream.
pub fn collect_hu(world: &MailWorld) -> Feed {
    let mut feed = Feed::new(FeedId::Hu, false);
    feed.samples = Some(0);
    for report in &world.provider.reports {
        feed.count_sample();
        for &d in &report.domains {
            feed.record(d, report.time);
        }
    }
    feed
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_hu;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 53).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03))
    }

    #[test]
    fn hu_matches_report_stream() {
        let w = world();
        let feed = collect_hu(&w);
        assert_eq!(feed.samples, Some(w.provider.reports.len() as u64));
        assert!(!feed.reports_volume);
        assert!(feed.unique_domains() > 0);
    }

    #[test]
    fn report_times_not_delivery_times() {
        let w = world();
        let feed = collect_hu(&w);
        // Every recorded first_seen equals some report time, which
        // trails delivery by the human delay.
        let report_times: std::collections::HashSet<_> =
            w.provider.reports.iter().map(|r| r.time).collect();
        let mut checked = 0;
        for (_, s) in feed.iter().take(200) {
            assert!(report_times.contains(&s.first_seen));
            checked += 1;
        }
        assert!(checked > 0);
    }
}
