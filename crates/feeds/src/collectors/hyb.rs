//! Hybrid collector (`Hyb`).
//!
//! "We do not know the exact collection methodology it uses, but we
//! believe it is a hybrid of multiple methods" (§3.4). We compose it
//! from four sources: a small MX-like trap, narrow honey accounts, a
//! partner's sample of user reports, and — crucially — a *non-e-mail*
//! web-spam corpus, which supplies the feed's striking number of
//! exclusive live domains while contributing almost nothing to mail
//! volume (the paper's hypothesis in §4.2.2: "one possibility is that
//! this feed contains spam domains not derived from e-mail spam").

use crate::config::HybConfig;
use crate::feed::Feed;
use crate::id::FeedId;
use crate::parse::DomainExtractor;
use rand::RngExt;
use taster_ecosystem::campaign::TargetClass;
use taster_mailsim::render::render_spam;
use taster_mailsim::MailWorld;
use taster_sim::RngStream;

/// Collects the `Hyb` feed.
pub fn collect_hyb(world: &MailWorld, config: &HybConfig) -> Feed {
    let mut feed = Feed::new(FeedId::Hyb, false);
    feed.samples = Some(0);
    let mut rng = RngStream::new(world.truth.seed, "feeds/hyb");
    let extractor = DomainExtractor::new();

    for event in &world.truth.events {
        let capture = match event.target {
            // The Hyb trap's addresses only ever leaked into the older
            // direct-spammer lists, so it misses the botnet blasts —
            // part of why Hyb's mail-volume coverage is so poor
            // despite its domain breadth (§4.2.2).
            TargetClass::BruteForce
                if matches!(
                    event.delivery,
                    taster_ecosystem::campaign::DeliveryVector::Direct
                ) =>
            {
                rng.random_bool(config.trap_prob)
            }
            TargetClass::Harvested(v) if v == config.harvest_vector => {
                rng.random_bool(config.harvest_prob)
            }
            _ => false,
        };
        if !capture {
            continue;
        }
        let msg = render_spam(&world.truth, event.advertised, event.chaff, event.time, &mut rng);
        feed.count_sample();
        for (d, host) in
            extractor.registered_domains_with_hosts(&msg.text, &world.truth.universe.table)
        {
            feed.record(d, event.time);
            feed.note_fqdn(host);
        }
    }

    // Partner sample of user reports.
    for report in &world.provider.reports {
        if rng.random_bool(config.report_sample_prob) {
            feed.count_sample();
            for &d in &report.domains {
                feed.record(d, report.time);
            }
        }
    }

    // The non-e-mail web-spam corpus.
    for &(time, domain) in &world.truth.webspam {
        if rng.random_bool(config.webspam_prob) {
            feed.count_sample();
            feed.record(domain, time);
        }
    }

    feed
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_hyb;
    use crate::config::FeedsConfig;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 59).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03))
    }

    #[test]
    fn webspam_domains_enter_the_feed() {
        let w = world();
        let feed = collect_hyb(&w, &FeedsConfig::default().hyb);
        let mut covered = 0usize;
        for &(_, d) in &w.truth.webspam {
            if feed.contains(d) {
                covered += 1;
            }
        }
        assert!(
            covered as f64 > w.truth.webspam.len() as f64 * 0.9,
            "webspam coverage {covered}/{}",
            w.truth.webspam.len()
        );
    }

    #[test]
    fn webspam_is_a_large_share_of_uniques() {
        let w = world();
        let feed = collect_hyb(&w, &FeedsConfig::default().hyb);
        let web: std::collections::HashSet<_> =
            w.truth.webspam.iter().map(|&(_, d)| d).collect();
        let web_in_feed = feed.domain_ids().filter(|d| web.contains(d)).count();
        let frac = web_in_feed as f64 / feed.unique_domains() as f64;
        assert!(frac > 0.3, "webspam unique share {frac:.2}");
    }

    #[test]
    fn without_webspam_feed_shrinks() {
        let w = world();
        let mut cfg = FeedsConfig::default().hyb;
        let with = collect_hyb(&w, &cfg);
        cfg.webspam_prob = 0.0;
        let without = collect_hyb(&w, &cfg);
        assert!(with.unique_domains() > without.unique_domains());
    }
}
