//! Hybrid collector (`Hyb`).
//!
//! "We do not know the exact collection methodology it uses, but we
//! believe it is a hybrid of multiple methods" (§3.4). We compose it
//! from four sources: a small MX-like trap, narrow honey accounts, a
//! partner's sample of user reports, and — crucially — a *non-e-mail*
//! web-spam corpus, which supplies the feed's striking number of
//! exclusive live domains while contributing almost nothing to mail
//! volume (the paper's hypothesis in §4.2.2: "one possibility is that
//! this feed contains spam domains not derived from e-mail spam").

use crate::config::{HybConfig, DEFAULT_CHUNK_SIZE};
use crate::engine::{collect_content, MemberSpec};
use crate::feed::Feed;
use taster_mailsim::MailWorld;
use taster_sim::{FaultPlan, Obs, Parallelism};

/// Collects the `Hyb` feed.
///
/// Thin wrapper over the fused content engine with a single member
/// (the engine also applies the report sample and web-spam corpus);
/// per-event RNG streams make the result bit-identical to this feed's
/// slot in [`crate::pipeline::collect_all`].
pub fn collect_hyb(world: &MailWorld, config: &HybConfig) -> Feed {
    let member = MemberSpec::Hyb { config: *config };
    collect_content(
        world,
        std::slice::from_ref(&member),
        &FaultPlan::off(world.truth.seed),
        &Parallelism::serial(),
        &Obs::off(),
        DEFAULT_CHUNK_SIZE,
    )
    .pop()
    // lint:allow(no-panic) -- the engine yields exactly one feed per member; losing it must fail loudly rather than fabricate an empty feed
    .unwrap_or_else(|| unreachable!("engine yields one feed per member"))
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_hyb;
    use crate::config::FeedsConfig;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 59).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03)).unwrap()
    }

    #[test]
    fn webspam_domains_enter_the_feed() {
        let w = world();
        let feed = collect_hyb(&w, &FeedsConfig::default().hyb);
        let mut covered = 0usize;
        for &(_, d) in &w.truth.webspam {
            if feed.contains(d) {
                covered += 1;
            }
        }
        assert!(
            covered as f64 > w.truth.webspam.len() as f64 * 0.9,
            "webspam coverage {covered}/{}",
            w.truth.webspam.len()
        );
    }

    #[test]
    fn webspam_is_a_large_share_of_uniques() {
        let w = world();
        let feed = collect_hyb(&w, &FeedsConfig::default().hyb);
        let web: std::collections::HashSet<_> = w.truth.webspam.iter().map(|&(_, d)| d).collect();
        let web_in_feed = feed.domain_ids().filter(|d| web.contains(d)).count();
        let frac = web_in_feed as f64 / feed.unique_domains() as f64;
        assert!(frac > 0.3, "webspam unique share {frac:.2}");
    }

    #[test]
    fn without_webspam_feed_shrinks() {
        let w = world();
        let mut cfg = FeedsConfig::default().hyb;
        let with = collect_hyb(&w, &cfg);
        cfg.webspam_prob = 0.0;
        let without = collect_hyb(&w, &cfg);
        assert!(with.unique_domains() > without.unique_domains());
    }
}
