//! MX honeypot collectors (mx1, mx2, mx3).
//!
//! An MX honeypot accepts every SMTP connection to a quiescent domain
//! portfolio (§3.2). It therefore sees exactly the brute-force-
//! addressed share of campaigns whose address lists cover its
//! portfolio: stale lists cover the abandoned-domain honeypots (mx1,
//! mx2); only fresh zone-derived lists — favoured by botnets — cover
//! the newly-registered mx3. Capture probability scales with the
//! portfolio size. The collector runs a real accept-everything SMTP
//! session (`taster-smtp`): every captured copy is delivered through
//! the protocol state machine, and domains are recovered by parsing
//! the *stored* message — the pipeline a real MX sink runs.
//! It also receives the doppelganger/sign-up pollution stream.

use crate::config::MxConfig;
use crate::feed::Feed;
use crate::id::FeedId;
use crate::parse::DomainExtractor;
use rand::RngExt;
use taster_ecosystem::campaign::TargetClass;
use taster_mailsim::benign::BenignDest;
use taster_mailsim::render::render_spam;
use taster_mailsim::MailWorld;
use taster_sim::RngStream;
use taster_smtp::{deliver, HoneypotServer};

const LOCALPARTS: &[&str] = &["info", "admin", "bob", "sales", "john", "mary", "office"];

/// Collects MX honeypot `index` (0 = mx1, 1 = mx2, 2 = mx3).
pub fn collect_mx(world: &MailWorld, config: &MxConfig, index: u8) -> Feed {
    assert!(index < 3);
    let id = [FeedId::Mx1, FeedId::Mx2, FeedId::Mx3][index as usize];
    let mut feed = Feed::new(id, true);
    feed.samples = Some(0);
    let mut rng = RngStream::new(world.truth.seed, &format!("feeds/mx{}", index + 1));
    let extractor = DomainExtractor::new();
    let bit = 1u8 << index;

    // The honeypot's accept-everything SMTP sink. Spam cannons hold
    // connections open and pipeline transactions, so one long-lived
    // session suffices.
    let trap_domain = format!("quiet-portfolio-mx{}.com", index + 1);
    let (mut server, greeting) = HoneypotServer::connect(format!("mx.{trap_domain}"));
    debug_assert_eq!(greeting.code, 220);

    for event in &world.truth.events {
        if event.target != TargetClass::BruteForce {
            continue;
        }
        let campaign = world.truth.campaign(event.campaign);
        if campaign.brute_mask & bit == 0 {
            continue;
        }
        if !rng.random_bool(config.capture_prob) {
            continue;
        }
        let msg = render_spam(&world.truth, event.advertised, event.chaff, event.time, &mut rng);
        // Drive the SMTP dialogue: brute-force lists guess popular
        // localparts at every domain with a valid MX.
        let rcpt = format!(
            "{}@{}",
            LOCALPARTS[rng.random_range(0..LOCALPARTS.len())],
            trap_domain
        );
        let helo = format!("host{}.sender.example", rng.random_range(0..1000u32));
        deliver(&mut server, &helo, &msg.from, &[rcpt], &msg.text)
            .expect("honeypot accepts everything");
        let stored = server.drain_stored().pop().expect("one stored message");
        feed.count_sample();
        for (d, host) in
            extractor.registered_domains_with_hosts(&stored.data, &world.truth.universe.table)
        {
            feed.record(d, event.time);
            feed.note_fqdn(host);
        }
    }

    // Legitimate pollution addressed to this honeypot.
    for mail in &world.benign_mail {
        if mail.dest == BenignDest::MxHoneypot(index) {
            feed.count_sample();
            for &d in &mail.domains {
                feed.record(d, mail.time);
            }
        }
    }

    feed
}

#[cfg(test)]
mod tests {
    use crate::config::FeedsConfig;
    use crate::collectors::collect_mx;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 41).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03))
    }

    #[test]
    fn sizes_follow_capture_probability() {
        let w = world();
        let cfg = FeedsConfig::default();
        let mx1 = collect_mx(&w, &cfg.mx[0], 0);
        let mx2 = collect_mx(&w, &cfg.mx[1], 1);
        let mx3 = collect_mx(&w, &cfg.mx[2], 2);
        assert!(mx2.samples > mx1.samples, "{:?} > {:?}", mx2.samples, mx1.samples);
        assert!(mx1.samples > mx3.samples);
        assert!(mx2.unique_domains() > mx3.unique_domains());
    }

    #[test]
    fn mx_feeds_record_volume_and_times() {
        let w = world();
        let cfg = FeedsConfig::default();
        let mx2 = collect_mx(&w, &cfg.mx[1], 1);
        assert!(mx2.reports_volume);
        let total: u64 = mx2.iter().map(|(_, s)| s.volume).sum();
        assert!(total > 0);
        for (_, s) in mx2.iter() {
            assert!(s.first_seen <= s.last_seen);
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let cfg = FeedsConfig::default();
        let a = collect_mx(&w, &cfg.mx[0], 0);
        let b = collect_mx(&w, &cfg.mx[0], 0);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unique_domains(), b.unique_domains());
    }
}
