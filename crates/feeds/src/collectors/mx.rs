//! MX honeypot collectors (mx1, mx2, mx3).
//!
//! An MX honeypot accepts every SMTP connection to a quiescent domain
//! portfolio (§3.2). It therefore sees exactly the brute-force-
//! addressed share of campaigns whose address lists cover its
//! portfolio: stale lists cover the abandoned-domain honeypots (mx1,
//! mx2); only fresh zone-derived lists — favoured by botnets — cover
//! the newly-registered mx3. Capture probability scales with the
//! portfolio size. The collector parses the payload an
//! accept-everything SMTP sink would store — the message body as it
//! leaves the DATA state machine, without its terminating newline —
//! so domains are recovered exactly as a real MX sink recovers them.
//! It also receives the doppelganger/sign-up pollution stream.

use crate::config::{MxConfig, DEFAULT_CHUNK_SIZE};
use crate::engine::{collect_content, MemberSpec};
use crate::feed::Feed;
use taster_mailsim::MailWorld;
use taster_sim::{FaultPlan, Obs, Parallelism};

/// Collects MX honeypot `index` (0 = mx1, 1 = mx2, 2 = mx3).
///
/// Thin wrapper over the fused content engine with a single member;
/// per-event RNG streams make the result bit-identical to this feed's
/// slot in [`crate::pipeline::collect_all`].
pub fn collect_mx(world: &MailWorld, config: &MxConfig, index: u8) -> Feed {
    assert!(index < 3);
    let member = MemberSpec::Mx {
        config: *config,
        index,
    };
    collect_content(
        world,
        std::slice::from_ref(&member),
        &FaultPlan::off(world.truth.seed),
        &Parallelism::serial(),
        &Obs::off(),
        DEFAULT_CHUNK_SIZE,
    )
    .pop()
    // lint:allow(no-panic) -- the engine yields exactly one feed per member; losing it must fail loudly rather than fabricate an empty feed
    .unwrap_or_else(|| unreachable!("engine yields one feed per member"))
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_mx;
    use crate::config::FeedsConfig;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 41).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03)).unwrap()
    }

    #[test]
    fn sizes_follow_capture_probability() {
        let w = world();
        let cfg = FeedsConfig::default();
        let mx1 = collect_mx(&w, &cfg.mx[0], 0);
        let mx2 = collect_mx(&w, &cfg.mx[1], 1);
        let mx3 = collect_mx(&w, &cfg.mx[2], 2);
        assert!(
            mx2.samples > mx1.samples,
            "{:?} > {:?}",
            mx2.samples,
            mx1.samples
        );
        assert!(mx1.samples > mx3.samples);
        assert!(mx2.unique_domains() > mx3.unique_domains());
    }

    #[test]
    fn mx_feeds_record_volume_and_times() {
        let w = world();
        let cfg = FeedsConfig::default();
        let mx2 = collect_mx(&w, &cfg.mx[1], 1);
        assert!(mx2.reports_volume);
        let total: u64 = mx2.iter().map(|(_, s)| s.volume).sum();
        assert!(total > 0);
        for (_, s) in mx2.iter() {
            assert!(s.first_seen <= s.last_seen);
        }
    }

    #[test]
    fn deterministic() {
        let w = world();
        let cfg = FeedsConfig::default();
        let a = collect_mx(&w, &cfg.mx[0], 0);
        let b = collect_mx(&w, &cfg.mx[0], 0);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.unique_domains(), b.unique_domains());
    }
}
