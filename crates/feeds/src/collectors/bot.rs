//! Botnet-monitor collector (`Bot`).
//!
//! Captive instances of monitored botnets reproduce (nearly) the full
//! outbound stream of those botnets (§3.2): highly pure, highly
//! voluminous, blind to everything delivered any other way — including
//! every campaign of the unmonitored botnets. During the poisoning
//! window the stream is dominated by random non-domains (§4.1.1).

use crate::config::{BotConfig, DEFAULT_CHUNK_SIZE};
use crate::engine::{collect_content, MemberSpec};
use crate::feed::Feed;
use taster_mailsim::MailWorld;
use taster_sim::{FaultPlan, Obs, Parallelism};

/// Collects the `Bot` feed.
///
/// Thin wrapper over the fused content engine with a single member;
/// per-event RNG streams make the result bit-identical to this feed's
/// slot in [`crate::pipeline::collect_all`].
pub fn collect_bot(world: &MailWorld, config: &BotConfig) -> Feed {
    let member = MemberSpec::Bot { config: *config };
    collect_content(
        world,
        std::slice::from_ref(&member),
        &FaultPlan::off(world.truth.seed),
        &Parallelism::serial(),
        &Obs::off(),
        DEFAULT_CHUNK_SIZE,
    )
    .pop()
    // lint:allow(no-panic) -- the engine yields exactly one feed per member; losing it must fail loudly rather than fabricate an empty feed
    .unwrap_or_else(|| unreachable!("engine yields one feed per member"))
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_bot;
    use crate::config::FeedsConfig;
    use taster_ecosystem::campaign::DeliveryVector;
    use taster_ecosystem::domains::DomainKind;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 47).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03)).unwrap()
    }

    #[test]
    fn poison_dominates_unique_domains() {
        let w = world();
        let feed = collect_bot(&w, &FeedsConfig::default().bot);
        let mut poison = 0usize;
        let mut other = 0usize;
        for (d, _) in feed.iter() {
            if w.truth.universe.record(d).kind == DomainKind::Poison {
                poison += 1;
            } else {
                other += 1;
            }
        }
        assert!(
            poison > 3 * other,
            "poison {poison} vs other {other}: random domains dominate Bot"
        );
    }

    #[test]
    fn only_monitored_botnet_campaigns_appear() {
        let w = world();
        let feed = collect_bot(&w, &FeedsConfig::default().bot);
        // Build the set of domains deliverable by monitored botnets.
        let mut allowed = std::collections::HashSet::new();
        for e in w.truth.events() {
            if let DeliveryVector::Botnet(b) = e.delivery {
                if w.truth.botnets[b.index()].monitored {
                    allowed.insert(e.advertised);
                    if let Some(c) = e.chaff {
                        allowed.insert(c);
                    }
                }
            }
        }
        for (d, _) in feed.iter() {
            assert!(allowed.contains(&d));
        }
    }

    #[test]
    fn high_purity_no_benign_pollution() {
        let w = world();
        let feed = collect_bot(&w, &FeedsConfig::default().bot);
        // Botnet feeds have no false positives beyond chaff the bots
        // themselves emit: every domain traces to a botnet message.
        assert!(feed.samples.unwrap() > 0);
        assert!(feed.unique_domains() > 0);
    }
}
