//! Domain-blacklist collectors (dbl, uribl).
//!
//! Blacklists are *meta-feeds*: professionally curated aggregations of
//! many upstream spam sources, delivering binary listings rather than
//! samples (§3.2). We model one as a listing process over the universe
//! of advertised domains: each domain a campaign rotates through is
//! listed with a probability depending on how observable it is (loud
//! vs quiet, tagged-vertical vs not), after a delay anchored on the
//! moment the blacklist's sources could first see it. Curation drops
//! unregistered garbage (hence 100 % DNS purity in Table 2) and almost
//! all Alexa/ODP-listed domains (hence ≤2 % benign contamination).

use crate::config::{BlacklistConfig, ListingAnchor};
use crate::engine::{apply_source_record, ShardObs, SourceRecord};
use crate::feed::Feed;
use crate::id::FeedId;
use rand::RngExt;
use taster_domain::DomainId;
use taster_ecosystem::campaign::CampaignStyle;
use taster_mailsim::MailWorld;
use taster_sim::{FaultPlan, Obs, RngStream, SimTime};
use taster_stats::sample::exponential;

/// Collects one blacklist feed.
///
/// Under fault injection the snapshot transport degrades: every
/// listing is delayed by the profile's snapshot latency, individual
/// snapshot entries can be lost to truncation (keyed by the serial
/// entry index, so the result is identical at any worker count), and
/// listings landing inside an outage window are missed entirely.
pub fn collect_blacklist(
    world: &MailWorld,
    config: &BlacklistConfig,
    id: FeedId,
    fault_plan: &FaultPlan,
) -> Feed {
    collect_blacklist_observed(world, config, id, fault_plan, &Obs::off())
}

/// [`collect_blacklist`] with observability: counts listings recorded,
/// snapshot entries lost and outage misses into `obs`. Accumulation is
/// local and absorbed once, so the metrics totals match a serial pass.
pub fn collect_blacklist_observed(
    world: &MailWorld,
    config: &BlacklistConfig,
    id: FeedId,
    fault_plan: &FaultPlan,
    obs: &Obs,
) -> Feed {
    let mut local = ShardObs::new(obs.metrics.is_on());
    let mut feed = Feed::new(id, false);
    for rec in blacklist_source_records(world, config, id, fault_plan, &mut local) {
        apply_source_record(&mut feed, &rec, &mut local);
    }
    obs.metrics.absorb(&local.into_shard());
    feed
}

/// Pre-decides one blacklist's listings: every listing draw, delay
/// draw and snapshot-fault decision happens here in the exact serial
/// order of the batch pass, so the emitted records are a pure function
/// of `(world, config, plan)` and can be applied all at once or
/// incrementally by listing time.
pub(crate) fn blacklist_source_records(
    world: &MailWorld,
    config: &BlacklistConfig,
    id: FeedId,
    fault_plan: &FaultPlan,
    local: &mut ShardObs,
) -> Vec<SourceRecord> {
    assert!(matches!(id, FeedId::Dbl | FeedId::Uribl));
    let mut out = Vec::new();
    let mut rng = RngStream::new(world.truth.seed, &format!("feeds/{}", id.label()));
    let truth = &world.truth;
    let day_secs = taster_sim::DAY as f64;
    let faults_on = !fault_plan.is_off();
    let label = id.label();
    let snapshot_stage = format!("snapshot/{label}");
    let mut entry_idx = 0u64;

    let mut consider = |domain: DomainId,
                        base_prob: f64,
                        anchor: SimTime,
                        rng: &mut RngStream,
                        out: &mut Vec<SourceRecord>| {
        let record = truth.universe.record(domain);
        // Curation: registration validation, benign-list suppression.
        let prob = if !record.registered {
            base_prob * config.unregistered_leak
        } else if record.alexa_rank.is_some() || record.odp {
            base_prob * config.benign_leak
        } else {
            base_prob
        };
        if rng.random_bool(prob.clamp(0.0, 1.0)) {
            let delay = exponential(rng, config.delay_mean_days * day_secs) as u64;
            let mut listed = anchor.plus(delay);
            let idx = entry_idx;
            entry_idx += 1;
            if faults_on {
                listed = listed.plus(fault_plan.profile().snapshot_delay_secs);
                if fault_plan.snapshot_dropped(&snapshot_stage, idx) {
                    if local.on {
                        local.snapshot_dropped += 1;
                    }
                    return;
                }
                if fault_plan.outage_at(label, listed) {
                    if local.on {
                        local.outage_skips += 1;
                    }
                    return;
                }
            }
            out.push(SourceRecord {
                time: listed,
                copies: 1,
                counts_sample: false,
                domains: vec![domain],
            });
        }
    };

    for campaign in &truth.campaigns {
        if campaign.poison {
            // Poison domains are unregistered garbage; curation drops
            // them wholesale (handled per-domain below for the leak).
            continue;
        }
        let tagged = truth.roster.program(campaign.program).tagged;
        let base_prob = match (campaign.style, tagged) {
            (CampaignStyle::Loud, _) => config.loud_prob,
            (CampaignStyle::Quiet, true) => config.quiet_tagged_prob,
            (CampaignStyle::Quiet, false) => config.quiet_untagged_prob,
        };
        for plan in &campaign.domains {
            let anchor = match config.anchor {
                ListingAnchor::AdvertStart => plan.window.start,
                ListingAnchor::BlastStart => plan.warmup_end,
            };
            consider(plan.storefront, base_prob, anchor, &mut rng, &mut out);
            if let Some(landing) = plan.landing {
                consider(landing, base_prob, anchor, &mut rng, &mut out);
            }
        }
    }

    // Web-spam corpus (SEO/forum spam also flows into blacklist
    // source networks, more so for the broad blacklist).
    for &(time, domain) in &truth.webspam {
        consider(domain, config.webspam_prob, time, &mut rng, &mut out);
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FeedsConfig;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::MailConfig;

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 61).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03)).unwrap()
    }

    #[test]
    fn listings_are_binary_no_samples_no_volume() {
        let w = world();
        let cfg = FeedsConfig::default();
        let dbl = collect_blacklist(&w, &cfg.dbl, FeedId::Dbl, &FaultPlan::off(w.truth.seed));
        assert_eq!(dbl.samples, None);
        assert!(!dbl.reports_volume);
        for (_, s) in dbl.iter() {
            assert_eq!(s.volume, 1, "one listing per domain");
            assert_eq!(s.first_seen, s.last_seen);
        }
    }

    #[test]
    fn curation_enforces_registration_purity() {
        let w = world();
        let cfg = FeedsConfig::default();
        for (blc, id) in [(&cfg.dbl, FeedId::Dbl), (&cfg.uribl, FeedId::Uribl)] {
            let feed = collect_blacklist(&w, blc, id, &FaultPlan::off(w.truth.seed));
            let registered = feed
                .domain_ids()
                .filter(|&d| w.truth.universe.record(d).registered)
                .count();
            let frac = registered as f64 / feed.unique_domains().max(1) as f64;
            assert!(frac > 0.99, "{id}: DNS purity {frac}");
        }
    }

    #[test]
    fn benign_contamination_is_tiny() {
        let w = world();
        let cfg = FeedsConfig::default();
        let uribl = collect_blacklist(&w, &cfg.uribl, FeedId::Uribl, &FaultPlan::off(w.truth.seed));
        let benign = uribl
            .domain_ids()
            .filter(|&d| {
                let r = w.truth.universe.record(d);
                r.alexa_rank.is_some() || r.odp
            })
            .count();
        let frac = benign as f64 / uribl.unique_domains().max(1) as f64;
        assert!(frac < 0.05, "benign contamination {frac}");
    }

    #[test]
    fn dbl_lists_earlier_than_uribl() {
        let w = world();
        let cfg = FeedsConfig::default();
        let dbl = collect_blacklist(&w, &cfg.dbl, FeedId::Dbl, &FaultPlan::off(w.truth.seed));
        let uribl = collect_blacklist(&w, &cfg.uribl, FeedId::Uribl, &FaultPlan::off(w.truth.seed));
        // Compare mean listing time relative to the domain's first
        // advertisement over the common domains.
        let mut dbl_lag = 0f64;
        let mut uribl_lag = 0f64;
        let mut n = 0f64;
        for c in w.truth.campaigns.iter().filter(|c| !c.poison) {
            for p in &c.domains {
                if let (Some(a), Some(b)) = (dbl.stats(p.storefront), uribl.stats(p.storefront)) {
                    dbl_lag += a.first_seen.signed_diff(p.window.start) as f64;
                    uribl_lag += b.first_seen.signed_diff(p.window.start) as f64;
                    n += 1.0;
                }
            }
        }
        assert!(n > 50.0);
        assert!(
            dbl_lag / n < uribl_lag / n,
            "dbl mean lag {} < uribl {}",
            dbl_lag / n,
            uribl_lag / n
        );
    }
}
