//! Seeded honey-account collectors (Ac1, Ac2).
//!
//! Honey accounts receive spam addressed through *harvested* lists —
//! a campaign can only reach them if it bought lists harvested from a
//! vector the accounts were seeded into (§3.2). Ac1 is broadly seeded;
//! Ac2 sits on a narrow vector set, which is what makes it the outlier
//! of the proportionality analysis (Figs 7–8).

use crate::config::{AcConfig, DEFAULT_CHUNK_SIZE};
use crate::engine::{collect_content, MemberSpec};
use crate::feed::Feed;
use taster_mailsim::MailWorld;
use taster_sim::{FaultPlan, Obs, Parallelism};

/// Collects honey-account feed `index` (0 = Ac1, 1 = Ac2).
///
/// Thin wrapper over the fused content engine with a single member;
/// per-event RNG streams make the result bit-identical to this feed's
/// slot in [`crate::pipeline::collect_all`].
pub fn collect_ac(world: &MailWorld, config: &AcConfig, index: u8) -> Feed {
    assert!(index < 2);
    let member = MemberSpec::Ac {
        config: *config,
        index,
    };
    collect_content(
        world,
        std::slice::from_ref(&member),
        &FaultPlan::off(world.truth.seed),
        &Parallelism::serial(),
        &Obs::off(),
        DEFAULT_CHUNK_SIZE,
    )
    .pop()
    // lint:allow(no-panic) -- the engine yields exactly one feed per member; losing it must fail loudly rather than fabricate an empty feed
    .unwrap_or_else(|| unreachable!("engine yields one feed per member"))
}

#[cfg(test)]
mod tests {
    use crate::collectors::collect_ac;
    use crate::config::FeedsConfig;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::{MailConfig, MailWorld};

    fn world() -> MailWorld {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.03), 43).unwrap();
        MailWorld::build(truth, MailConfig::default().with_scale(0.03)).unwrap()
    }

    #[test]
    fn ac1_outcollects_ac2() {
        let w = world();
        let cfg = FeedsConfig::default();
        let ac1 = collect_ac(&w, &cfg.ac[0], 0);
        let ac2 = collect_ac(&w, &cfg.ac[1], 1);
        assert!(ac1.samples > ac2.samples);
        assert!(ac1.unique_domains() > ac2.unique_domains());
    }

    #[test]
    fn narrow_seeding_restricts_campaign_visibility() {
        let w = world();
        let cfg = FeedsConfig::default();
        // A feed seeded on a single exotic vector sees only campaigns
        // harvesting that vector.
        let narrow = crate::config::AcConfig {
            vector_mask: 0b1_0000,
            capture_prob: 1.0,
        };
        let feed = collect_ac(&w, &narrow, 1);
        let broad = collect_ac(&w, &cfg.ac[0], 0);
        assert!(feed.unique_domains() < broad.unique_domains() * 2);
        // Every recorded spam domain belongs to a campaign whose
        // harvest mask includes vector 4 (benign pollution aside).
        use taster_ecosystem::campaign::TargetClass;
        let mut eligible = std::collections::HashSet::new();
        for e in w.truth.events() {
            if matches!(e.target, TargetClass::Harvested(4)) {
                eligible.insert(e.advertised);
                if let Some(c) = e.chaff {
                    eligible.insert(c);
                }
            }
        }
        let benign: std::collections::HashSet<_> = w
            .benign_mail
            .iter()
            .flat_map(|m| m.domains.iter().copied())
            .collect();
        for (d, _) in feed.iter() {
            assert!(
                eligible.contains(&d) || benign.contains(&d),
                "unexpected domain in narrow feed"
            );
        }
    }
}
