//! Typed errors for feed collection and downstream pipeline stages.
//!
//! The collection pipeline degrades gracefully under fault injection:
//! recoverable conditions (lost records, collector outages) shrink the
//! feeds rather than abort, while genuinely unusable inputs — an
//! invalid configuration, an invalid fault profile, a scenario that
//! fails validation — surface as a [`PipelineError`] instead of a
//! panic.

/// An unrecoverable error in the collection pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The feeds configuration failed validation.
    InvalidConfig(String),
    /// The fault profile failed validation.
    InvalidFaultProfile(String),
    /// The scenario failed validation (reported by `taster-core`).
    InvalidScenario(String),
    /// Ground-truth generation rejected its configuration.
    Generation(String),
    /// A run produced no records in any feed without an outage model
    /// that explains it — a silent zero row in a sweep or benchmark
    /// would hide real breakage, so this surfaces as a typed error.
    EmptyCollection(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::InvalidConfig(msg) => write!(f, "invalid feeds config: {msg}"),
            PipelineError::InvalidFaultProfile(msg) => {
                write!(f, "invalid fault profile: {msg}")
            }
            PipelineError::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            PipelineError::Generation(msg) => write!(f, "ground-truth generation failed: {msg}"),
            PipelineError::EmptyCollection(msg) => write!(f, "empty collection: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        let e = PipelineError::InvalidConfig("bad prob".to_string());
        assert!(e.to_string().contains("invalid feeds config"));
        assert!(e.to_string().contains("bad prob"));
        let e = PipelineError::InvalidFaultProfile("rate".to_string());
        assert!(e.to_string().contains("fault profile"));
    }
}
