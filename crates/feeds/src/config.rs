//! Per-collector configuration.

/// MX honeypot parameters.
#[derive(Debug, Clone, Copy)]
pub struct MxConfig {
    /// Probability a brute-force copy whose address list covers this
    /// honeypot actually lands in it (proportional to the honeypot's
    /// address-space size).
    pub capture_prob: f64,
}

/// Seeded honey-account parameters.
#[derive(Debug, Clone, Copy)]
pub struct AcConfig {
    /// Harvest vectors this feed's accounts were seeded into (bitmask;
    /// the quality of a honey-account feed is "related both to the
    /// number of accounts and how well the accounts are seeded", §3.2).
    pub vector_mask: u8,
    /// Capture probability per matching harvested copy.
    pub capture_prob: f64,
}

/// Botnet-monitor parameters.
#[derive(Debug, Clone, Copy)]
pub struct BotConfig {
    /// Fraction of a monitored botnet's outbound stream the captive
    /// instances reproduce.
    pub capture_prob: f64,
}

/// Hybrid-feed parameters: a mixture of sources.
#[derive(Debug, Clone, Copy)]
pub struct HybConfig {
    /// Its own small MX-like trap (any brute-force copy).
    pub trap_prob: f64,
    /// Its own honey accounts on one harvest vector.
    pub harvest_vector: u8,
    /// Capture probability on that vector.
    pub harvest_prob: f64,
    /// A partner relays a sample of user reports.
    pub report_sample_prob: f64,
    /// Fraction of web-spam (non-e-mail) sightings it ingests.
    pub webspam_prob: f64,
}

/// When a blacklist's listing clock starts for a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ListingAnchor {
    /// At first advertisement (warm-up start) — human-report-driven
    /// sources see the trickle.
    AdvertStart,
    /// At blast onset — trap-driven sources only see the blast.
    BlastStart,
}

/// Domain-blacklist parameters.
#[derive(Debug, Clone, Copy)]
pub struct BlacklistConfig {
    /// Listing probability for loud-campaign domains.
    pub loud_prob: f64,
    /// Listing probability for quiet-campaign domains of *tagged*
    /// programs (pharma-focused trap networks catch these well).
    pub quiet_tagged_prob: f64,
    /// Listing probability for quiet untagged-vertical domains.
    pub quiet_untagged_prob: f64,
    /// Listing probability for web-spam corpus domains.
    pub webspam_prob: f64,
    /// Probability a listed domain that sits on the Alexa/ODP lists
    /// survives curation (the paper: <1–2 % of blacklist entries).
    pub benign_leak: f64,
    /// Probability an *unregistered* domain survives curation
    /// (blacklists validate registration, Table 2: 100 % DNS).
    pub unregistered_leak: f64,
    /// Exponential mean listing delay after the anchor, days.
    pub delay_mean_days: f64,
    /// Which instant the delay anchors on.
    pub anchor: ListingAnchor,
}

/// All feed-collector knobs.
#[derive(Debug, Clone)]
pub struct FeedsConfig {
    /// mx1..mx3.
    pub mx: [MxConfig; 3],
    /// Ac1, Ac2.
    pub ac: [AcConfig; 2],
    /// Bot monitor.
    pub bot: BotConfig,
    /// Hybrid feed.
    pub hyb: HybConfig,
    /// The broad, fast blacklist (dbl).
    pub dbl: BlacklistConfig,
    /// The trap-driven URI blacklist (uribl).
    pub uribl: BlacklistConfig,
    /// Events per streaming chunk in the fused content pass. Peak
    /// memory of the collect stage is O(chunk_size); the output is
    /// byte-identical at every value ≥ 1 because all per-event RNG and
    /// fault streams are keyed by the event's time-sorted index, never
    /// by chunk or shard position.
    pub chunk_size: usize,
}

/// Default streaming chunk: large enough to amortise per-chunk setup,
/// small enough that the SoA buffer stays cache- and RSS-friendly.
pub const DEFAULT_CHUNK_SIZE: usize = 65_536;

impl Default for FeedsConfig {
    fn default() -> Self {
        FeedsConfig {
            mx: [
                MxConfig { capture_prob: 0.13 },
                MxConfig { capture_prob: 0.40 },
                MxConfig { capture_prob: 0.07 },
            ],
            ac: [
                AcConfig {
                    vector_mask: 0b0_1111, // vectors 0–3 + 4? bits 0..=3
                    capture_prob: 0.18,
                },
                AcConfig {
                    vector_mask: 0b1_0010, // vectors 1 and 4 only
                    capture_prob: 0.10,
                },
            ],
            bot: BotConfig { capture_prob: 0.9 },
            hyb: HybConfig {
                trap_prob: 0.03,
                harvest_vector: 0,
                harvest_prob: 0.03,
                report_sample_prob: 0.05,
                webspam_prob: 1.0,
            },
            dbl: BlacklistConfig {
                loud_prob: 0.75,
                quiet_tagged_prob: 0.25,
                quiet_untagged_prob: 0.40,
                webspam_prob: 0.22,
                benign_leak: 0.008,
                unregistered_leak: 0.002,
                delay_mean_days: 0.35,
                anchor: ListingAnchor::AdvertStart,
            },
            uribl: BlacklistConfig {
                loud_prob: 0.985,
                quiet_tagged_prob: 0.08,
                quiet_untagged_prob: 0.10,
                webspam_prob: 0.03,
                benign_leak: 0.02,
                unregistered_leak: 0.002,
                delay_mean_days: 0.6,
                anchor: ListingAnchor::BlastStart,
            },
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

impl FeedsConfig {
    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), String> {
        let mut probs = vec![
            self.bot.capture_prob,
            self.hyb.trap_prob,
            self.hyb.harvest_prob,
            self.hyb.report_sample_prob,
            self.hyb.webspam_prob,
        ];
        for m in &self.mx {
            probs.push(m.capture_prob);
        }
        for a in &self.ac {
            probs.push(a.capture_prob);
            if a.vector_mask == 0 {
                return Err("honey-account feed with empty seeding mask".into());
            }
        }
        for b in [&self.dbl, &self.uribl] {
            probs.extend([
                b.loud_prob,
                b.quiet_tagged_prob,
                b.quiet_untagged_prob,
                b.webspam_prob,
                b.benign_leak,
                b.unregistered_leak,
            ]);
            if b.delay_mean_days <= 0.0 {
                return Err("blacklist delay must be positive".into());
            }
        }
        if self.chunk_size == 0 {
            return Err("chunk_size must be at least 1".into());
        }
        if probs.iter().any(|p| !(0.0..=1.0).contains(p)) {
            return Err("probability out of [0,1]".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        FeedsConfig::default().validate().unwrap();
    }

    #[test]
    fn mx2_is_largest_mx3_smallest() {
        let c = FeedsConfig::default();
        assert!(c.mx[1].capture_prob > c.mx[0].capture_prob);
        assert!(c.mx[0].capture_prob > c.mx[2].capture_prob);
    }

    #[test]
    fn ac2_is_narrower_than_ac1() {
        let c = FeedsConfig::default();
        assert!(c.ac[1].vector_mask.count_ones() < c.ac[0].vector_mask.count_ones());
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = FeedsConfig::default();
        c.ac[0].vector_mask = 0;
        assert!(c.validate().is_err());
        let mut c = FeedsConfig::default();
        c.dbl.loud_prob = 2.0;
        assert!(c.validate().is_err());
        let mut c = FeedsConfig::default();
        c.uribl.delay_mean_days = 0.0;
        assert!(c.validate().is_err());
    }
}
