//! Feed identities.

/// The ten feeds, named as in the paper (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FeedId {
    /// Human-identified spam from a very large Web-mail provider.
    Hu,
    /// A commercial domain blacklist (broad, curated).
    Dbl,
    /// A commercial URI blacklist (trap-driven, curated).
    Uribl,
    /// MX honeypot 1 (moderate abandoned-domain portfolio).
    Mx1,
    /// MX honeypot 2 (very large abandoned portfolio — the biggest
    /// feed by raw volume, and the poisoned one).
    Mx2,
    /// MX honeypot 3 (small, newly-registered domains).
    Mx3,
    /// Seeded honey accounts, well-seeded across harvest vectors.
    Ac1,
    /// Seeded honey accounts, narrowly seeded.
    Ac2,
    /// Botnet monitor (captive bot instances).
    Bot,
    /// Hybrid feed (multiple collection methods, incl. non-e-mail).
    Hyb,
}

/// Collection methodology categories (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedKind {
    /// Humans press "this is spam".
    HumanIdentified,
    /// Operational domain blacklist.
    Blacklist,
    /// MX record pointed at an accept-everything SMTP sink.
    MxHoneypot,
    /// Seeded honey accounts at many providers.
    HoneyAccounts,
    /// Captive botnet instances in a contained environment.
    Botnet,
    /// A mixture of methods.
    Hybrid,
}

impl FeedId {
    /// All ten feeds in the paper's table order.
    pub const ALL: [FeedId; 10] = [
        FeedId::Hu,
        FeedId::Dbl,
        FeedId::Uribl,
        FeedId::Mx1,
        FeedId::Mx2,
        FeedId::Mx3,
        FeedId::Ac1,
        FeedId::Ac2,
        FeedId::Bot,
        FeedId::Hyb,
    ];

    /// The eight non-blacklist ("base") feeds.
    pub const BASE: [FeedId; 8] = [
        FeedId::Hu,
        FeedId::Mx1,
        FeedId::Mx2,
        FeedId::Mx3,
        FeedId::Ac1,
        FeedId::Ac2,
        FeedId::Bot,
        FeedId::Hyb,
    ];

    /// Feeds that report per-domain volume (§4.3 uses only these).
    pub const WITH_VOLUME: [FeedId; 6] = [
        FeedId::Mx1,
        FeedId::Mx2,
        FeedId::Mx3,
        FeedId::Ac1,
        FeedId::Ac2,
        FeedId::Bot,
    ];

    /// The paper's mnemonic.
    pub fn label(self) -> &'static str {
        match self {
            FeedId::Hu => "Hu",
            FeedId::Dbl => "dbl",
            FeedId::Uribl => "uribl",
            FeedId::Mx1 => "mx1",
            FeedId::Mx2 => "mx2",
            FeedId::Mx3 => "mx3",
            FeedId::Ac1 => "Ac1",
            FeedId::Ac2 => "Ac2",
            FeedId::Bot => "Bot",
            FeedId::Hyb => "Hyb",
        }
    }

    /// Collection methodology.
    pub fn kind(self) -> FeedKind {
        match self {
            FeedId::Hu => FeedKind::HumanIdentified,
            FeedId::Dbl | FeedId::Uribl => FeedKind::Blacklist,
            FeedId::Mx1 | FeedId::Mx2 | FeedId::Mx3 => FeedKind::MxHoneypot,
            FeedId::Ac1 | FeedId::Ac2 => FeedKind::HoneyAccounts,
            FeedId::Bot => FeedKind::Botnet,
            FeedId::Hyb => FeedKind::Hybrid,
        }
    }

    /// Dense index into `FeedId::ALL`.
    pub fn index(self) -> usize {
        match self {
            FeedId::Hu => 0,
            FeedId::Dbl => 1,
            FeedId::Uribl => 2,
            FeedId::Mx1 => 3,
            FeedId::Mx2 => 4,
            FeedId::Mx3 => 5,
            FeedId::Ac1 => 6,
            FeedId::Ac2 => 7,
            FeedId::Bot => 8,
            FeedId::Hyb => 9,
        }
    }
}

impl std::fmt::Display for FeedId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_paper_table() {
        assert_eq!(FeedId::ALL[0], FeedId::Hu);
        assert_eq!(FeedId::ALL.len(), 10);
        assert_eq!(FeedId::BASE.len(), 8);
        assert!(FeedId::BASE.iter().all(|f| f.kind() != FeedKind::Blacklist));
    }

    #[test]
    fn with_volume_excludes_blacklists_hu_hyb() {
        for f in FeedId::WITH_VOLUME {
            assert!(!matches!(
                f,
                FeedId::Hu | FeedId::Dbl | FeedId::Uribl | FeedId::Hyb
            ));
        }
    }

    #[test]
    fn indices_are_dense() {
        for (i, f) in FeedId::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
    }

    #[test]
    fn labels_and_kinds() {
        assert_eq!(FeedId::Dbl.label(), "dbl");
        assert_eq!(FeedId::Dbl.kind(), FeedKind::Blacklist);
        assert_eq!(FeedId::Bot.kind(), FeedKind::Botnet);
        assert_eq!(format!("{}", FeedId::Mx2), "mx2");
    }
}
