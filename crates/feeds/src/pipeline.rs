//! Runs all ten collectors.

use crate::collectors::{collect_blacklist_observed, collect_hu_observed};
use crate::config::FeedsConfig;
use crate::engine::{collect_content, MemberSpec};
use crate::error::PipelineError;
use crate::feed::{Feed, FeedSet};
use crate::id::FeedId;
use taster_mailsim::MailWorld;
use taster_sim::metrics::{STAGE_BLACKLIST, STAGE_COLLECT};
use taster_sim::{FaultPlan, Obs, Parallelism, TimeWindow};

/// The seven content collectors in fused-pass order, built from the
/// configuration. Shared by the batch pipeline and the incremental
/// (serve) ingestion path so both see identical member specs.
pub(crate) fn content_members(config: &FeedsConfig) -> [MemberSpec; 7] {
    [
        MemberSpec::Mx {
            config: config.mx[0],
            index: 0,
        },
        MemberSpec::Mx {
            config: config.mx[1],
            index: 1,
        },
        MemberSpec::Mx {
            config: config.mx[2],
            index: 2,
        },
        MemberSpec::Ac {
            config: config.ac[0],
            index: 0,
        },
        MemberSpec::Ac {
            config: config.ac[1],
            index: 1,
        },
        MemberSpec::Bot { config: config.bot },
        MemberSpec::Hyb { config: config.hyb },
    ]
}

/// Collects all ten feeds over the world with the default
/// [`Parallelism`] (the `TASTER_THREADS` env override, else all
/// available cores). See [`collect_all_with`].
pub fn collect_all(world: &MailWorld, config: &FeedsConfig) -> FeedSet {
    collect_all_with(world, config, &Parallelism::default())
}

/// Collects all ten feeds over the world on `par` workers, fault-free.
/// See [`try_collect_all_faulted`] for the fault-injected variant.
///
/// Every collector decision draws from an RNG stream derived from
/// `(seed, feed, event)`, so the set is reproducible, *bit-identical
/// at any worker count*, and collectors are independent: removing one
/// cannot change another's contents. The seven content collectors run
/// fused and sharded over the event log (one render and one URL
/// extraction per captured delivery, shared across feeds); the three
/// cheap stream collectors (Hu and the two blacklists) fan out as
/// whole tasks.
pub fn collect_all_with(world: &MailWorld, config: &FeedsConfig, par: &Parallelism) -> FeedSet {
    match try_collect_all_faulted(world, config, &FaultPlan::off(world.truth.seed), par) {
        Ok(set) => set,
        // lint:allow(no-panic) -- documented panicking wrapper; the fallible path is try_collect_all_faulted
        Err(e) => panic!("feed collection failed: {e}"),
    }
}

/// Collects all ten feeds under a [`FaultPlan`], validating the
/// configuration and the fault profile up front.
///
/// With an off plan the output is byte-identical to
/// [`collect_all_with`] — fault streams live under disjoint
/// `fault/…` names and are never derived. With faults enabled, every
/// decision is keyed by `(seed, stage, event index)`, so the set stays
/// bit-identical at any worker count. Feeds that suffered outages
/// carry the outage windows as gap markers ([`Feed::gaps`]).
pub fn try_collect_all_faulted(
    world: &MailWorld,
    config: &FeedsConfig,
    plan: &FaultPlan,
    par: &Parallelism,
) -> Result<FeedSet, PipelineError> {
    try_collect_all_observed(world, config, plan, par, &Obs::off())
}

/// [`try_collect_all_faulted`] with observability.
///
/// Per-feed record/domain counters, fault-decision counters and the
/// domains-per-record histogram land in `obs.metrics` (worker shards
/// merged in event-range order, so totals match a serial pass);
/// per-feed outage gaps are recorded as trace events in feed order.
/// With `Obs::off()` the output — and every byte the pipeline later
/// renders — is identical to the unobserved entry points.
pub fn try_collect_all_observed(
    world: &MailWorld,
    config: &FeedsConfig,
    plan: &FaultPlan,
    par: &Parallelism,
    obs: &Obs,
) -> Result<FeedSet, PipelineError> {
    config.validate().map_err(PipelineError::InvalidConfig)?;
    plan.profile()
        .validate()
        .map_err(PipelineError::InvalidFaultProfile)?;
    let members = content_members(config);
    type Task<'w> = Box<dyn FnOnce() -> Feed + Send + 'w>;
    // Two disjoint stages so their wall times sum without overlap:
    // `collect` covers the eight record-capturing feeds (seven content
    // members + Hu), `blacklist` the two listing simulations.
    let (content, hu) = obs.stage(STAGE_COLLECT, || {
        let content = {
            let _span = obs.span("collect/content");
            collect_content(world, &members, plan, par, obs, config.chunk_size)
        };
        let hu = {
            let _span = obs.span("collect/hu");
            collect_hu_observed(world, plan, obs)
        };
        (content, hu)
    });
    let blacklists = obs.stage(STAGE_BLACKLIST, || {
        let _span = obs.span("collect/blacklists");
        // Counter adds are saturating (commutative + associative), so
        // concurrent absorption from these two tasks cannot change
        // the totals.
        let lists = par.par_run::<Feed, Task<'_>>(vec![
            Box::new(|| collect_blacklist_observed(world, &config.dbl, FeedId::Dbl, plan, obs)),
            Box::new(|| collect_blacklist_observed(world, &config.uribl, FeedId::Uribl, plan, obs)),
        ]);
        if obs.metrics.is_on() {
            for feed in &lists {
                obs.metrics.add(
                    &format!("blacklist/listings/{}", feed.id.label()),
                    feed.unique_domains() as u64,
                );
            }
        }
        lists
    });
    let mut feeds: Vec<Feed> = std::iter::once(hu)
        .chain(blacklists)
        .chain(content)
        .collect();
    if !plan.is_off() {
        for feed in &mut feeds {
            for window in plan.outage_windows(feed.id.label()) {
                feed.note_gap(window);
                obs.trace.event(
                    "gap",
                    &[
                        ("feed", feed.id.label()),
                        ("start", &window.start.0.to_string()),
                        ("end", &window.end.0.to_string()),
                    ],
                );
                obs.metrics.add("collect/gaps", 1);
            }
        }
    }
    let set = FeedSet::new(feeds);
    if obs.metrics.is_on() {
        for id in FeedId::ALL {
            let feed = set.get(id);
            let label = id.label();
            if let Some(samples) = feed.samples {
                obs.metrics
                    .add(&format!("collect/samples/{label}"), samples);
            }
            obs.metrics.add(
                &format!("collect/unique_domains/{label}"),
                feed.unique_domains() as u64,
            );
        }
    }
    Ok(set)
}

/// Rejects a collection run that produced no records in any feed
/// unless the fault plan explains the silence: a profile whose outage
/// windows black out the whole measurement window for every feed (the
/// canonical `blackout`) legitimately collects nothing, but any other
/// profile yielding ten empty feeds indicates a broken configuration —
/// downstream tables would render all-zero rows that look like data.
pub fn ensure_nonempty_collection(
    feeds: &FeedSet,
    plan: &FaultPlan,
    window: TimeWindow,
) -> Result<(), PipelineError> {
    let any_records = FeedId::ALL.iter().any(|&id| {
        let feed = feeds.get(id);
        feed.unique_domains() > 0 || feed.samples.is_some_and(|s| s > 0)
    });
    if any_records {
        return Ok(());
    }
    let fully_blacked_out = FeedId::ALL
        .iter()
        .all(|&id| covers(&plan.outage_windows(id.label()), window));
    if fully_blacked_out {
        return Ok(());
    }
    Err(PipelineError::EmptyCollection(format!(
        "fault profile '{}' produced no records in any of the ten feeds, \
         and its outage windows do not cover the measurement window",
        plan.profile().name
    )))
}

/// True when the union of `windows` covers all of `span`.
fn covers(windows: &[TimeWindow], span: TimeWindow) -> bool {
    if span.start >= span.end {
        return true;
    }
    let mut sorted: Vec<TimeWindow> = windows.to_vec();
    sorted.sort_by_key(|w| w.start);
    let mut reached = span.start;
    for w in sorted {
        if w.start > reached {
            return false;
        }
        reached = reached.max(w.end);
        if reached >= span.end {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::MailConfig;

    #[test]
    fn all_ten_feeds_collect() {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 67).unwrap();
        let world = MailWorld::build(truth, MailConfig::default().with_scale(0.02)).unwrap();
        let set = collect_all(&world, &FeedsConfig::default());
        for id in FeedId::ALL {
            let feed = set.get(id);
            assert_eq!(feed.id, id);
            assert!(feed.unique_domains() > 0, "{id} is empty");
        }
        // Blacklists are listing feeds: no raw sample counts.
        assert_eq!(set.get(FeedId::Dbl).samples, None);
        assert_eq!(set.get(FeedId::Uribl).samples, None);
        // Volume-bearing feeds are exactly the paper's six.
        for id in FeedId::ALL {
            assert_eq!(
                set.get(id).reports_volume,
                FeedId::WITH_VOLUME.contains(&id),
                "{id}"
            );
        }
    }

    #[test]
    fn empty_collection_is_a_typed_error_unless_blacked_out() {
        use taster_sim::{FaultProfile, SimTime};
        let window = TimeWindow::new(SimTime::ZERO, SimTime::from_days(30));
        let empty = || FeedSet::new(FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect());
        // Blackout explains total silence: every feed's outage windows
        // cover the whole measurement window.
        let blackout = FaultPlan::new(FaultProfile::blackout(), 7);
        assert!(ensure_nonempty_collection(&empty(), &blackout, window).is_ok());
        // A lossy profile does not: ten empty feeds must be reported
        // as a typed error, not rendered as silent zero rows.
        let lossy = FaultPlan::new(FaultProfile::lossy_feeds(), 7);
        let err = ensure_nonempty_collection(&empty(), &lossy, window).unwrap_err();
        assert!(matches!(err, PipelineError::EmptyCollection(_)));
        assert!(err.to_string().contains("lossy-feeds"), "{err}");
        // Any records at all make the check pass.
        let mut feeds: Vec<Feed> = FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect();
        feeds[0].record(taster_domain::DomainId(3), SimTime(5));
        assert!(ensure_nonempty_collection(&FeedSet::new(feeds), &lossy, window).is_ok());
    }

    #[test]
    fn worker_count_does_not_change_the_set() {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 67).unwrap();
        let world = MailWorld::build(truth, MailConfig::default().with_scale(0.02)).unwrap();
        let cfg = FeedsConfig::default();
        let serial = collect_all_with(&world, &cfg, &taster_sim::Parallelism::serial());
        for workers in [2, 8] {
            let parallel = collect_all_with(&world, &cfg, &taster_sim::Parallelism::fixed(workers));
            for id in FeedId::ALL {
                let (a, b) = (serial.get(id), parallel.get(id));
                assert_eq!(a.samples, b.samples, "{id}");
                assert_eq!(a.unique_domains(), b.unique_domains(), "{id}");
                assert_eq!(a.unique_fqdns(), b.unique_fqdns(), "{id}");
                for (d, s) in a.iter() {
                    assert_eq!(Some(s), b.stats(d), "{id} {d:?}");
                }
            }
        }
    }
}
