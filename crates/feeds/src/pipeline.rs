//! Runs all ten collectors.

use crate::collectors::{
    collect_ac, collect_blacklist, collect_bot, collect_hu, collect_hyb, collect_mx,
};
use crate::config::FeedsConfig;
use crate::feed::FeedSet;
use crate::id::FeedId;
use taster_mailsim::MailWorld;

/// Collects all ten feeds over the world.
///
/// Each collector draws from its own RNG stream, so the set is
/// reproducible and collectors are independent: removing one cannot
/// change another's contents.
pub fn collect_all(world: &MailWorld, config: &FeedsConfig) -> FeedSet {
    config.validate().expect("valid feeds config");
    let feeds = vec![
        collect_hu(world),
        collect_blacklist(world, &config.dbl, FeedId::Dbl),
        collect_blacklist(world, &config.uribl, FeedId::Uribl),
        collect_mx(world, &config.mx[0], 0),
        collect_mx(world, &config.mx[1], 1),
        collect_mx(world, &config.mx[2], 2),
        collect_ac(world, &config.ac[0], 0),
        collect_ac(world, &config.ac[1], 1),
        collect_bot(world, &config.bot),
        collect_hyb(world, &config.hyb),
    ];
    FeedSet::new(feeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taster_ecosystem::{EcosystemConfig, GroundTruth};
    use taster_mailsim::MailConfig;

    #[test]
    fn all_ten_feeds_collect() {
        let truth =
            GroundTruth::generate(&EcosystemConfig::default().with_scale(0.02), 67).unwrap();
        let world = MailWorld::build(truth, MailConfig::default().with_scale(0.02));
        let set = collect_all(&world, &FeedsConfig::default());
        for id in FeedId::ALL {
            let feed = set.get(id);
            assert_eq!(feed.id, id);
            assert!(feed.unique_domains() > 0, "{id} is empty");
        }
        // Blacklists are listing feeds: no raw sample counts.
        assert_eq!(set.get(FeedId::Dbl).samples, None);
        assert_eq!(set.get(FeedId::Uribl).samples, None);
        // Volume-bearing feeds are exactly the paper's six.
        for id in FeedId::ALL {
            assert_eq!(
                set.get(id).reports_volume,
                FeedId::WITH_VOLUME.contains(&id),
                "{id}"
            );
        }
    }
}
