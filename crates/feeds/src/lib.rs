//! # taster-feeds
//!
//! The ten spam-domain feeds of the paper (Table 1), re-created by
//! *collection mechanism* over the simulated ecosystem:
//!
//! | Feed   | Type                  | Collector                        |
//! |--------|-----------------------|----------------------------------|
//! | `Hu`   | Human identified      | [`collectors::hu`]               |
//! | `dbl`  | Domain blacklist      | [`collectors::blacklist`]        |
//! | `uribl`| Domain blacklist      | [`collectors::blacklist`]        |
//! | `mx1-3`| MX honeypots          | [`collectors::mx`]               |
//! | `Ac1-2`| Seeded honey accounts | [`collectors::ac`]               |
//! | `Bot`  | Botnet monitor        | [`collectors::bot`]              |
//! | `Hyb`  | Hybrid                | [`collectors::hyb`]              |
//!
//! Full-content collectors (honeypots, the botnet monitor) receive
//! *rendered message text* and recover registered domains through the
//! URL scanner and public-suffix engine — the same lowest-common-
//! denominator reduction the paper performs (§3). Blacklists are
//! meta-feeds with binary listing semantics and no volume information.
//!
//! The output of [`pipeline::collect_all`] is a [`feed::FeedSet`]: ten
//! [`feed::Feed`]s, each a map from registered domain to
//! first-seen/last-seen/volume, plus raw sample counts — everything the
//! analyses in `taster-analysis` consume.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod collectors;
pub mod config;
mod engine;
pub mod error;
pub mod feed;
pub mod id;
pub mod incremental;
pub mod parse;
pub mod pipeline;
pub mod reporting;
pub mod table;

pub use config::FeedsConfig;
pub use error::PipelineError;
pub use feed::{DomainStats, Feed, FeedSet};
pub use id::{FeedId, FeedKind};
pub use incremental::IngestState;
pub use pipeline::{
    collect_all, collect_all_with, ensure_nonempty_collection, try_collect_all_faulted,
    try_collect_all_observed,
};
pub use reporting::ReportingPolicy;
pub use table::FeedColumns;
