//! Feed data model.
//!
//! The paper's feeds differ in reporting granularity (§2): raw
//! per-message records, de-duplicated domain records, or binary
//! blacklist listings, with or without volume. [`Feed`] captures the
//! common denominator the analyses need: per registered domain, the
//! first and last time the feed carried it and (when the feed reports
//! it) the observation volume; plus the raw sample count for Table 1.

use crate::id::FeedId;
use std::collections::HashMap;
use taster_domain::DomainId;
use taster_sim::SimTime;
use taster_stats::EmpiricalDist;

/// Per-domain state within a feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainStats {
    /// First time the feed carried this domain.
    pub first_seen: SimTime,
    /// Last time the feed carried this domain.
    pub last_seen: SimTime,
    /// Observations of this domain in the feed.
    pub volume: u64,
}

/// One collected feed.
#[derive(Debug, Clone)]
pub struct Feed {
    /// Which feed this is.
    pub id: FeedId,
    /// Raw records received over the window (`None` for blacklists,
    /// which deliver listings rather than samples — the paper's
    /// Table 1 shows "n/a").
    pub samples: Option<u64>,
    /// Whether the feed's records carry usable volume information
    /// (§4.3 restricts proportionality analysis to these feeds).
    pub reports_volume: bool,
    domains: HashMap<DomainId, DomainStats>,
    /// Distinct fully-qualified hostnames observed (hashes), for feeds
    /// that report URL granularity; `None` for domain-only feeds
    /// (blacklists and scrubbed feeds — §2).
    fqdns: Option<std::collections::HashSet<u64>>,
}

impl Feed {
    /// An empty feed.
    pub fn new(id: FeedId, reports_volume: bool) -> Feed {
        Feed {
            id,
            samples: None,
            reports_volume,
            domains: HashMap::new(),
            fqdns: None,
        }
    }

    /// Notes one observed fully-qualified hostname (by stable hash).
    /// The first call switches the feed to URL granularity.
    pub fn note_fqdn(&mut self, host_hash: u64) {
        self.fqdns
            .get_or_insert_with(std::collections::HashSet::new)
            .insert(host_hash);
    }

    /// Distinct FQDNs observed, when the feed reports URL granularity.
    pub fn unique_fqdns(&self) -> Option<usize> {
        self.fqdns.as_ref().map(|s| s.len())
    }

    /// Records one observation of `domain` at `time`.
    pub fn record(&mut self, domain: DomainId, time: SimTime) {
        match self.domains.entry(domain) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let s = e.get_mut();
                s.first_seen = s.first_seen.min(time);
                s.last_seen = s.last_seen.max(time);
                s.volume += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(DomainStats {
                    first_seen: time,
                    last_seen: time,
                    volume: 1,
                });
            }
        }
    }

    /// Counts one raw sample (a received record/message).
    pub fn count_sample(&mut self) {
        *self.samples.get_or_insert(0) += 1;
    }

    /// Number of unique registered domains.
    pub fn unique_domains(&self) -> usize {
        self.domains.len()
    }

    /// Stats for one domain.
    pub fn stats(&self, domain: DomainId) -> Option<&DomainStats> {
        self.domains.get(&domain)
    }

    /// Whether the feed carries `domain`.
    pub fn contains(&self, domain: DomainId) -> bool {
        self.domains.contains_key(&domain)
    }

    /// Iterates `(domain, stats)`.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, &DomainStats)> {
        self.domains.iter().map(|(&d, s)| (d, s))
    }

    /// All domain ids, unordered.
    pub fn domain_ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.domains.keys().copied()
    }

    /// The feed's empirical volume distribution over domains.
    /// Meaningful only when [`Feed::reports_volume`] is true.
    pub fn volume_distribution(&self) -> EmpiricalDist {
        EmpiricalDist::from_counts(self.iter().map(|(d, s)| (d.0, s.volume)))
    }

    /// Folds `other` (a shard of the same feed) into `self`.
    ///
    /// The combination is commutative and associative — first seen
    /// takes the minimum, last seen the maximum, volumes and sample
    /// counts add, FQDN sets union — so parallel collection can merge
    /// event-range shards in any grouping and produce the same feed a
    /// serial pass over all events would.
    pub fn merge(&mut self, other: Feed) {
        assert_eq!(self.id, other.id, "merging shards of different feeds");
        assert_eq!(self.reports_volume, other.reports_volume);
        self.samples = match (self.samples, other.samples) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        for (domain, stats) in other.domains {
            match self.domains.entry(domain) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let s = e.get_mut();
                    s.first_seen = s.first_seen.min(stats.first_seen);
                    s.last_seen = s.last_seen.max(stats.last_seen);
                    s.volume += stats.volume;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(stats);
                }
            }
        }
        if let Some(theirs) = other.fqdns {
            self.fqdns
                .get_or_insert_with(std::collections::HashSet::new)
                .extend(theirs);
        }
    }
}

/// The full set of collected feeds, indexed by [`FeedId`].
#[derive(Debug, Clone)]
pub struct FeedSet {
    feeds: Vec<Feed>,
}

impl FeedSet {
    /// Assembles a set; `feeds` must contain each feed exactly once.
    pub fn new(mut feeds: Vec<Feed>) -> FeedSet {
        feeds.sort_by_key(|f| f.id.index());
        assert_eq!(feeds.len(), FeedId::ALL.len(), "need all ten feeds");
        for (i, f) in feeds.iter().enumerate() {
            assert_eq!(f.id.index(), i, "duplicate or missing feed");
        }
        FeedSet { feeds }
    }

    /// Access one feed.
    pub fn get(&self, id: FeedId) -> &Feed {
        &self.feeds[id.index()]
    }

    /// Iterate all feeds in table order.
    pub fn iter(&self) -> impl Iterator<Item = &Feed> {
        self.feeds.iter()
    }

    /// Union of unique domains across `feeds`.
    pub fn union_domains(&self, feeds: &[FeedId]) -> std::collections::HashSet<DomainId> {
        let mut set = std::collections::HashSet::new();
        for &f in feeds {
            set.extend(self.get(f).domain_ids());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_first_last_volume() {
        let mut f = Feed::new(FeedId::Mx1, true);
        let d = DomainId(3);
        f.record(d, SimTime(50));
        f.record(d, SimTime(10));
        f.record(d, SimTime(90));
        let s = f.stats(d).unwrap();
        assert_eq!(s.first_seen, SimTime(10));
        assert_eq!(s.last_seen, SimTime(90));
        assert_eq!(s.volume, 3);
        assert_eq!(f.unique_domains(), 1);
        assert!(f.contains(d));
        assert!(!f.contains(DomainId(4)));
    }

    #[test]
    fn samples_default_to_none() {
        let mut f = Feed::new(FeedId::Dbl, false);
        assert_eq!(f.samples, None);
        f.count_sample();
        f.count_sample();
        assert_eq!(f.samples, Some(2));
    }

    #[test]
    fn volume_distribution_reflects_counts() {
        let mut f = Feed::new(FeedId::Bot, true);
        f.record(DomainId(1), SimTime(1));
        f.record(DomainId(1), SimTime(2));
        f.record(DomainId(2), SimTime(3));
        let dist = f.volume_distribution();
        assert_eq!(dist.total(), 3);
        assert_eq!(dist.count(1), 2);
    }

    #[test]
    fn merge_is_order_independent() {
        let shard = |times: &[(u32, u64)]| {
            let mut f = Feed::new(FeedId::Mx1, true);
            f.samples = Some(0);
            for &(d, t) in times {
                f.count_sample();
                f.record(DomainId(d), SimTime(t));
                f.note_fqdn(u64::from(d) * 31 + t);
            }
            f
        };
        let a = shard(&[(1, 10), (2, 50)]);
        let b = shard(&[(1, 5), (3, 99)]);
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab.samples, Some(4));
        assert_eq!(ab.samples, ba.samples);
        assert_eq!(ab.unique_domains(), 3);
        for d in [1u32, 2, 3] {
            assert_eq!(ab.stats(DomainId(d)), ba.stats(DomainId(d)));
        }
        let s = ab.stats(DomainId(1)).unwrap();
        assert_eq!(s.first_seen, SimTime(5));
        assert_eq!(s.last_seen, SimTime(10));
        assert_eq!(s.volume, 2);
        assert_eq!(ab.unique_fqdns(), ba.unique_fqdns());
    }

    fn dummy_set() -> FeedSet {
        FeedSet::new(FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect())
    }

    #[test]
    fn feed_set_indexing_and_union() {
        let mut feeds: Vec<Feed> = FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect();
        feeds[FeedId::Mx1.index()].record(DomainId(7), SimTime(1));
        feeds[FeedId::Bot.index()].record(DomainId(8), SimTime(1));
        feeds.reverse(); // constructor must restore order
        let set = FeedSet::new(feeds);
        assert_eq!(set.get(FeedId::Mx1).id, FeedId::Mx1);
        let union = set.union_domains(&[FeedId::Mx1, FeedId::Bot]);
        assert_eq!(union.len(), 2);
        let _ = dummy_set();
    }

    #[test]
    #[should_panic(expected = "need all ten feeds")]
    fn feed_set_rejects_missing() {
        FeedSet::new(vec![Feed::new(FeedId::Hu, false)]);
    }
}
