//! Feed data model.
//!
//! The paper's feeds differ in reporting granularity (§2): raw
//! per-message records, de-duplicated domain records, or binary
//! blacklist listings, with or without volume. [`Feed`] captures the
//! common denominator the analyses need: per registered domain, the
//! first and last time the feed carried it and (when the feed reports
//! it) the observation volume; plus the raw sample count for Table 1.
//!
//! A feed has two storage states. During collection it is *building*:
//! an incremental hash map, because events arrive in arbitrary domain
//! order. [`FeedSet::new`] *seals* every feed into [`FeedColumns`] —
//! sorted parallel columns plus a membership bitset — which is what the
//! analyses scan. The `Feed` API is identical in both states.

use crate::id::FeedId;
use crate::table::FeedColumns;
use taster_domain::fx::{FxHashMap, FxHashSet};
use taster_domain::{DomainBitset, DomainId};
use taster_sim::{SimTime, TimeWindow};
use taster_stats::EmpiricalDist;

/// Per-domain state within a feed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainStats {
    /// First time the feed carried this domain.
    pub first_seen: SimTime,
    /// Last time the feed carried this domain.
    pub last_seen: SimTime,
    /// Observations of this domain in the feed.
    pub volume: u64,
}

/// Either ingestion (map) or analysis (columnar) storage.
#[derive(Debug, Clone)]
enum Store {
    Building(FxHashMap<DomainId, DomainStats>),
    Sealed(FeedColumns),
}

/// One collected feed.
#[derive(Debug, Clone)]
pub struct Feed {
    /// Which feed this is.
    pub id: FeedId,
    /// Raw records received over the window (`None` for blacklists,
    /// which deliver listings rather than samples — the paper's
    /// Table 1 shows "n/a").
    pub samples: Option<u64>,
    /// Whether the feed's records carry usable volume information
    /// (§4.3 restricts proportionality analysis to these feeds).
    pub reports_volume: bool,
    store: Store,
    /// Distinct fully-qualified hostnames observed (hashes), for feeds
    /// that report URL granularity; `None` for domain-only feeds
    /// (blacklists and scrubbed feeds — §2).
    fqdns: Option<FxHashSet<u64>>,
    /// Known collection gaps: windows during which the collector was
    /// down and recorded nothing. Empty on clean runs.
    gaps: Vec<TimeWindow>,
}

impl Feed {
    /// An empty feed (in the building state).
    pub fn new(id: FeedId, reports_volume: bool) -> Feed {
        Feed {
            id,
            samples: None,
            reports_volume,
            store: Store::Building(FxHashMap::default()),
            fqdns: None,
            gaps: Vec::new(),
        }
    }

    /// Marks a known collection gap (an outage window during which this
    /// feed recorded nothing). Works in either storage state.
    pub fn note_gap(&mut self, window: TimeWindow) {
        if !self.gaps.contains(&window) {
            self.gaps.push(window);
            self.gaps.sort_by_key(|w| (w.start, w.end));
        }
    }

    /// The feed's known collection gaps, sorted by start time.
    pub fn gaps(&self) -> &[TimeWindow] {
        &self.gaps
    }

    /// Notes one observed fully-qualified hostname (by stable hash).
    /// The first call switches the feed to URL granularity.
    pub fn note_fqdn(&mut self, host_hash: u64) {
        self.fqdns
            .get_or_insert_with(FxHashSet::default)
            .insert(host_hash);
    }

    /// Distinct FQDNs observed, when the feed reports URL granularity.
    pub fn unique_fqdns(&self) -> Option<usize> {
        self.fqdns.as_ref().map(|s| s.len())
    }

    /// Records one observation of `domain` at `time`.
    ///
    /// Panics once the feed has been sealed — collection is over.
    pub fn record(&mut self, domain: DomainId, time: SimTime) {
        let Store::Building(domains) = &mut self.store else {
            // lint:allow(no-panic) -- documented sealed-state contract; recording into a sealed feed is a caller bug
            panic!("cannot record into a sealed feed");
        };
        match domains.entry(domain) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let s = e.get_mut();
                s.first_seen = s.first_seen.min(time);
                s.last_seen = s.last_seen.max(time);
                s.volume += 1;
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(DomainStats {
                    first_seen: time,
                    last_seen: time,
                    volume: 1,
                });
            }
        }
    }

    /// Counts one raw sample (a received record/message).
    pub fn count_sample(&mut self) {
        *self.samples.get_or_insert(0) += 1;
    }

    /// Freezes the ingestion map into sorted columns. Idempotent.
    pub fn seal(&mut self) {
        if let Store::Building(domains) = &mut self.store {
            let map = std::mem::take(domains);
            self.store = Store::Sealed(FeedColumns::from_map(map));
        }
    }

    /// The columnar storage. Panics while still building.
    pub fn columns(&self) -> &FeedColumns {
        match &self.store {
            Store::Sealed(cols) => cols,
            // lint:allow(no-panic) -- documented contract: columns() requires a sealed feed
            Store::Building(_) => panic!("feed {} has not been sealed", self.id),
        }
    }

    /// Number of unique registered domains.
    pub fn unique_domains(&self) -> usize {
        match &self.store {
            Store::Building(domains) => domains.len(),
            Store::Sealed(cols) => cols.len(),
        }
    }

    /// Stats for one domain.
    pub fn stats(&self, domain: DomainId) -> Option<DomainStats> {
        match &self.store {
            Store::Building(domains) => domains.get(&domain).copied(),
            Store::Sealed(cols) => cols.stats(domain),
        }
    }

    /// Whether the feed carries `domain`.
    pub fn contains(&self, domain: DomainId) -> bool {
        match &self.store {
            Store::Building(domains) => domains.contains_key(&domain),
            Store::Sealed(cols) => cols.contains(domain),
        }
    }

    /// Iterates `(domain, stats)` — ascending domain order once sealed,
    /// unordered while building.
    pub fn iter(&self) -> impl Iterator<Item = (DomainId, DomainStats)> + '_ {
        let (building, sealed) = match &self.store {
            Store::Building(domains) => (Some(domains.iter()), None),
            Store::Sealed(cols) => (None, Some(cols.iter())),
        };
        building
            .into_iter()
            .flatten()
            .map(|(&d, &s)| (d, s))
            .chain(sealed.into_iter().flatten())
    }

    /// All domain ids — ascending once sealed, unordered while building.
    pub fn domain_ids(&self) -> impl Iterator<Item = DomainId> + '_ {
        self.iter().map(|(d, _)| d)
    }

    /// The feed's empirical volume distribution over domains.
    /// Meaningful only when [`Feed::reports_volume`] is true.
    pub fn volume_distribution(&self) -> EmpiricalDist {
        EmpiricalDist::from_counts(self.iter().map(|(d, s)| (d.0, s.volume)))
    }

    /// The feed's FQDN hashes in ascending order, when the feed reports
    /// URL granularity. Deterministic: the same feed always yields the
    /// same list, whatever insertion order built the set. Used by the
    /// serve checkpointer.
    pub fn fqdn_hashes_sorted(&self) -> Option<Vec<u64>> {
        self.fqdns.as_ref().map(|s| {
            let mut v: Vec<u64> = s.iter().copied().collect();
            v.sort_unstable();
            v
        })
    }

    /// Rebuilds a *building* feed from checkpointed parts: the inverse
    /// of iterating a snapshot. `entries` may arrive in any order;
    /// duplicates are a caller bug (the last entry wins; volumes are
    /// not merged). The restored feed accepts further [`Feed::record`]
    /// calls — this is how `serve --resume` replays only the tail.
    pub fn from_parts(
        id: FeedId,
        reports_volume: bool,
        samples: Option<u64>,
        entries: impl IntoIterator<Item = (DomainId, DomainStats)>,
        fqdns: Option<Vec<u64>>,
        gaps: Vec<TimeWindow>,
    ) -> Feed {
        let mut map = FxHashMap::default();
        for (d, s) in entries {
            map.insert(d, s);
        }
        let mut feed = Feed {
            id,
            samples,
            reports_volume,
            store: Store::Building(map),
            fqdns: fqdns.map(|v| v.into_iter().collect()),
            gaps: Vec::new(),
        };
        for gap in gaps {
            feed.note_gap(gap);
        }
        feed
    }

    /// Folds `other` (a shard of the same feed) into `self`.
    ///
    /// The combination is commutative and associative — first seen
    /// takes the minimum, last seen the maximum, volumes and sample
    /// counts add, FQDN sets union — so parallel collection can merge
    /// event-range shards in any grouping and produce the same feed a
    /// serial pass over all events would. Both shards must still be
    /// building.
    pub fn merge(&mut self, other: Feed) {
        assert_eq!(self.id, other.id, "merging shards of different feeds");
        assert_eq!(self.reports_volume, other.reports_volume);
        let (Store::Building(ours), Store::Building(theirs)) = (&mut self.store, other.store)
        else {
            // lint:allow(no-panic) -- documented contract: only building shards merge
            panic!("cannot merge sealed feeds");
        };
        self.samples = match (self.samples, other.samples) {
            (Some(a), Some(b)) => Some(a + b),
            (a, b) => a.or(b),
        };
        for (domain, stats) in theirs {
            match ours.entry(domain) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let s = e.get_mut();
                    s.first_seen = s.first_seen.min(stats.first_seen);
                    s.last_seen = s.last_seen.max(stats.last_seen);
                    s.volume += stats.volume;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(stats);
                }
            }
        }
        if let Some(theirs) = other.fqdns {
            self.fqdns
                .get_or_insert_with(FxHashSet::default)
                .extend(theirs);
        }
        for gap in other.gaps {
            self.note_gap(gap);
        }
    }
}

/// The full set of collected feeds, indexed by [`FeedId`].
#[derive(Debug, Clone)]
pub struct FeedSet {
    feeds: Vec<Feed>,
}

impl FeedSet {
    /// Assembles a set; `feeds` must contain each feed exactly once.
    /// Seals every feed — collection is over once a set exists.
    pub fn new(mut feeds: Vec<Feed>) -> FeedSet {
        feeds.sort_by_key(|f| f.id.index());
        assert_eq!(feeds.len(), FeedId::ALL.len(), "need all ten feeds");
        for (i, f) in feeds.iter_mut().enumerate() {
            assert_eq!(f.id.index(), i, "duplicate or missing feed");
            f.seal();
        }
        FeedSet { feeds }
    }

    /// Access one feed.
    pub fn get(&self, id: FeedId) -> &Feed {
        &self.feeds[id.index()]
    }

    /// One feed's columnar storage.
    pub fn columns(&self, id: FeedId) -> &FeedColumns {
        self.get(id).columns()
    }

    /// Iterate all feeds in table order.
    pub fn iter(&self) -> impl Iterator<Item = &Feed> {
        self.feeds.iter()
    }

    /// Union of unique domains across `feeds`, as a bitset.
    pub fn union_domains(&self, feeds: &[FeedId]) -> DomainBitset {
        let mut set = DomainBitset::new();
        for &f in feeds {
            set.union_with(self.columns(f).members());
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_tracks_first_last_volume() {
        let mut f = Feed::new(FeedId::Mx1, true);
        let d = DomainId(3);
        f.record(d, SimTime(50));
        f.record(d, SimTime(10));
        f.record(d, SimTime(90));
        let s = f.stats(d).unwrap();
        assert_eq!(s.first_seen, SimTime(10));
        assert_eq!(s.last_seen, SimTime(90));
        assert_eq!(s.volume, 3);
        assert_eq!(f.unique_domains(), 1);
        assert!(f.contains(d));
        assert!(!f.contains(DomainId(4)));
    }

    #[test]
    fn samples_default_to_none() {
        let mut f = Feed::new(FeedId::Dbl, false);
        assert_eq!(f.samples, None);
        f.count_sample();
        f.count_sample();
        assert_eq!(f.samples, Some(2));
    }

    #[test]
    fn volume_distribution_reflects_counts() {
        let mut f = Feed::new(FeedId::Bot, true);
        f.record(DomainId(1), SimTime(1));
        f.record(DomainId(1), SimTime(2));
        f.record(DomainId(2), SimTime(3));
        let dist = f.volume_distribution();
        assert_eq!(dist.total(), 3);
        assert_eq!(dist.count(1), 2);
    }

    #[test]
    fn sealing_preserves_contents() {
        let mut f = Feed::new(FeedId::Bot, true);
        for &(d, t) in &[(130u32, 9u64), (1, 4), (1, 2), (64, 7)] {
            f.record(DomainId(d), SimTime(t));
        }
        let before: Vec<_> = {
            let mut v: Vec<_> = f.iter().collect();
            v.sort_by_key(|&(d, _)| d);
            v
        };
        f.seal();
        f.seal(); // idempotent
        let after: Vec<_> = f.iter().collect();
        assert_eq!(before, after, "sealed iteration is the sorted map");
        assert_eq!(f.unique_domains(), 3);
        assert!(f.contains(DomainId(64)));
        assert!(!f.contains(DomainId(65)));
        assert_eq!(f.stats(DomainId(1)).unwrap().volume, 2);
        assert_eq!(f.columns().ids().len(), 3);
    }

    #[test]
    #[should_panic(expected = "sealed feed")]
    fn sealed_feed_rejects_records() {
        let mut f = Feed::new(FeedId::Bot, true);
        f.seal();
        f.record(DomainId(1), SimTime(1));
    }

    #[test]
    fn merge_is_order_independent() {
        let shard = |times: &[(u32, u64)]| {
            let mut f = Feed::new(FeedId::Mx1, true);
            f.samples = Some(0);
            for &(d, t) in times {
                f.count_sample();
                f.record(DomainId(d), SimTime(t));
                f.note_fqdn(u64::from(d) * 31 + t);
            }
            f
        };
        let a = shard(&[(1, 10), (2, 50)]);
        let b = shard(&[(1, 5), (3, 99)]);
        let mut ab = a.clone();
        ab.merge(b.clone());
        let mut ba = b;
        ba.merge(a);
        assert_eq!(ab.samples, Some(4));
        assert_eq!(ab.samples, ba.samples);
        assert_eq!(ab.unique_domains(), 3);
        for d in [1u32, 2, 3] {
            assert_eq!(ab.stats(DomainId(d)), ba.stats(DomainId(d)));
        }
        let s = ab.stats(DomainId(1)).unwrap();
        assert_eq!(s.first_seen, SimTime(5));
        assert_eq!(s.last_seen, SimTime(10));
        assert_eq!(s.volume, 2);
        assert_eq!(ab.unique_fqdns(), ba.unique_fqdns());
    }

    fn dummy_set() -> FeedSet {
        FeedSet::new(FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect())
    }

    #[test]
    fn feed_set_indexing_and_union() {
        let mut feeds: Vec<Feed> = FeedId::ALL.iter().map(|&id| Feed::new(id, false)).collect();
        feeds[FeedId::Mx1.index()].record(DomainId(7), SimTime(1));
        feeds[FeedId::Bot.index()].record(DomainId(8), SimTime(1));
        feeds.reverse(); // constructor must restore order
        let set = FeedSet::new(feeds);
        assert_eq!(set.get(FeedId::Mx1).id, FeedId::Mx1);
        let union = set.union_domains(&[FeedId::Mx1, FeedId::Bot]);
        assert_eq!(union.len(), 2);
        assert!(union.contains(DomainId(7)));
        let _ = dummy_set();
    }

    #[test]
    #[should_panic(expected = "need all ten feeds")]
    fn feed_set_rejects_missing() {
        FeedSet::new(vec![Feed::new(FeedId::Hu, false)]);
    }
}
